// Step-graph capture & replay: the launch-bound regime and what one-graph-
// launch replay (SessionConfig::graph_capture) recovers.
//
// A deep encoder-decoder step issues hundreds of kernel launches; each pays
// the modeled host->device dispatch latency (DeviceProfile::
// launch_overhead_us) whether the kernel runs 2 us or 2 ms. At small
// per-GPU batches the kernels are short and the step is LAUNCH-BOUND; a
// captured step graph replays the whole static region as ONE dispatch, so
// the per-kernel gaps vanish. This bench sweeps batch size x depth to show
// (a) the launch-gap fraction of the eager step, (b) the replay speedup —
// largest at batch <= 1k tokens, vanishing at 15k — and (c) that replay
// composes with the overlapped-sync + pipelined-update schedule (the
// dynamic pieces stay outside the graph).
//
// Machine-readable output: bench/fig_launch_graph.json (validated by ci.sh).
#include <filesystem>
#include <fstream>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct GraphPerf {
  double step_us = 0;
  int64_t launches = 0;
  double launch_gap_us = 0;
  StepTimes stages;
  bool replayed = false;
  int64_t graph_kernels = 0;  ///< kernel nodes in the captured graph
  bool oom = false;
};

/// Steady-state LS2-arena step, eager or replayed. With `graph` the session
/// runs warm-up / capture / measured-replay; without it the measured step is
/// the second (post-warm-up) eager step, so both measurements see identical
/// allocator state.
GraphPerf measure(const models::TransformerConfig& cfg, int64_t batch_tokens, bool graph,
                  dist::ClusterConfig cluster = {1, 1}) {
  GraphPerf gp;
  try {
    data::MtDataset ds(cfg.vocab, 192, 8, 72, 17);
    auto batches = data::make_mt_batches(ds, batch_tokens, DType::kF16);
    const models::MtBatch& batch = data::largest_batch(batches);

    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.profile = simgpu::v100();
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.arena_bytes = capacity_scan(cfg, batch);
    sc.graph_capture = graph;
    Session session(sc);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 17,
                              session.param_alloc());
    optim::OptimConfig ocfg;
    optim::LightSeq2Trainer trainer(model.params(), ocfg, session.param_alloc());

    (void)core::train_step(session, model, batch, trainer, cluster);  // warm-up
    if (graph) {
      (void)core::train_step(session, model, batch, trainer, cluster);  // capture
      LS2_CHECK(session.step_graph() != nullptr)
          << "capture poisoned: " << session.graph_poison_reason();
      gp.graph_kernels = session.step_graph()->kernel_launches;
    }
    const auto s0 = session.device().stats();
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, model, batch, trainer, cluster);
    const auto s1 = session.device().stats();
    gp.step_us = session.device().clock_us() - t0;
    gp.stages = times;
    gp.replayed = times.replayed;
    gp.launches = s1.launches - s0.launches;
    gp.launch_gap_us = s1.launch_gap_us - s0.launch_gap_us;
  } catch (const mem::OutOfMemory&) {
    gp.oom = true;
  }
  return gp;
}

struct JsonRow {
  std::string section, model;
  int64_t batch_tokens = 0;
  int gpus = 1;
  GraphPerf eager, replay;
};
std::vector<JsonRow> g_rows;

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_launch_graph.json");
  out << "{\n  \"figure\": \"fig_launch_graph\",\n  \"schema\": 1,\n  \"configs\": [";
  char buf[1024];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"section\": \"%s\", \"model\": \"%s\", \"batch_tokens\": %lld, "
        "\"gpus\": %d, \"eager_step_us\": %.3f, \"replay_step_us\": %.3f, "
        "\"speedup\": %.4f, \"launches_per_step\": %lld, \"launch_gap_us\": %.3f, "
        "\"launch_gap_pct\": %.2f, \"graph_kernels\": %lld, \"replayed\": %s}",
        i == 0 ? "" : ",", r.section.c_str(), r.model.c_str(),
        static_cast<long long>(r.batch_tokens), r.gpus, r.eager.step_us,
        r.replay.step_us, r.eager.step_us / r.replay.step_us,
        static_cast<long long>(r.eager.launches), r.eager.launch_gap_us,
        100.0 * r.eager.launch_gap_us / r.eager.step_us,
        static_cast<long long>(r.replay.graph_kernels),
        r.replay.replayed ? "true" : "false");
    out << buf;
  }
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig_launch_graph.json\n", g_rows.size());
}

}  // namespace

static int bench_body() {
  print_header(
      "Step-graph replay: launch-bound sweep, LightSeq2+arena on one V100 (FP16)");
  std::printf("%-8s %-12s %9s %9s %12s %12s %8s\n", "model", "batch_tokens",
              "launches", "gap%", "eager_us", "replay_us", "speedup");
  for (int depth : {6, 12, 24}) {
    const auto cfg = models::TransformerConfig::base(depth, depth);
    const std::string label = model_label(cfg);
    for (int64_t tokens : {512, 1024, 2048, 4096, 8192, 15000}) {
      const GraphPerf eager = measure(cfg, tokens, /*graph=*/false);
      const GraphPerf replay = measure(cfg, tokens, /*graph=*/true);
      if (eager.oom || replay.oom) {
        std::printf("%-8s %-12lld %9s\n", label.c_str(),
                    static_cast<long long>(tokens), "OOM");
        continue;
      }
      g_rows.push_back({"launch_bound", label, tokens, 1, eager, replay});
      std::printf("%-8s %-12lld %9lld %8.1f%% %12.0f %12.0f %7.2fx\n", label.c_str(),
                  static_cast<long long>(tokens),
                  static_cast<long long>(eager.launches),
                  100.0 * eager.launch_gap_us / eager.step_us, eager.step_us,
                  replay.step_us, eager.step_us / replay.step_us);
    }
  }
  std::printf("\nThe replay win tracks the launch-gap fraction: biggest for deep\n"
              "models at small per-GPU batches (launch-bound), gone at 15k tokens\n"
              "(bandwidth/compute-bound) — the CUDA-Graphs result on real GPUs.\n");

  // Composition with the distributed schedule: the graph records the comm
  // enqueues but their completion times stay replay-time parameters, so
  // overlapped sync + pipelined per-bucket update run unchanged under
  // replay.
  print_header("Replay x pipelined update: 12e12d, 2x8 V100, batch/GPU sweep");
  std::printf("%-12s %12s %12s %8s %14s\n", "batch_tokens", "eager_us", "replay_us",
              "speedup", "exposed_sync_us");
  const auto cfg = models::TransformerConfig::base(12, 12);
  for (int64_t tokens : {512, 1024, 4096}) {
    const dist::ClusterConfig cluster{8, 2};
    const GraphPerf eager = measure(cfg, tokens, false, cluster);
    const GraphPerf replay = measure(cfg, tokens, true, cluster);
    if (eager.oom || replay.oom) continue;
    g_rows.push_back({"pipelined", model_label(cfg), tokens, cluster.total_gpus(), eager,
                      replay});
    std::printf("%-12lld %12.0f %12.0f %7.2fx %14.0f\n", static_cast<long long>(tokens),
                eager.step_us, replay.step_us, eager.step_us / replay.step_us,
                replay.stages.sync_us);
  }
  std::printf("\nWith multi-GPU sync in the picture the compute-side launch savings\n"
              "shrink the step until the (unchanged) ring time becomes the floor.\n");

  write_json();
  return 0;
}

int main() { return ls2::bench::guarded_main("fig_launch_graph", bench_body); }
