// Real-CPU cross-check (google-benchmark): fused kernels beat the unfused
// composition on actual host wall-clock too, because fusion removes memory
// passes — the same mechanism the device model charges for. Run in execute
// mode with real math.
#include <benchmark/benchmark.h>

#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "kernels/softmax.h"
#include "simgpu/profile.h"

namespace {

using namespace ls2;

struct Fixture {
  Fixture() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 7) {}
  simgpu::Device dev;
  kern::KernelContext kc;
};

void BM_BiasReluDropout_Fused(benchmark::State& state) {
  Fixture f;
  const int64_t rows = state.range(0), cols = 1024;
  Tensor x = Tensor::zeros({rows, cols}, DType::kF32);
  Tensor bias = Tensor::zeros({cols}, DType::kF32);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  for (auto _ : state) {
    kern::fused::bias_relu_dropout_fw(f.kc, x, bias, y, mask, 0.1f, 1);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_BiasReluDropout_Fused)->Arg(256)->Arg(2048);

void BM_BiasReluDropout_Unfused(benchmark::State& state) {
  Fixture f;
  const int64_t rows = state.range(0), cols = 1024;
  Tensor x = Tensor::zeros({rows, cols}, DType::kF32);
  Tensor bias = Tensor::zeros({cols}, DType::kF32);
  Tensor t1 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor t2 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  for (auto _ : state) {
    kern::baseline::add_bias(f.kc, x, bias, t1);
    kern::baseline::relu_fw(f.kc, t1, t2);
    kern::dropout_fw(f.kc, kern::Impl::kTorch, t2, y, mask, 0.1f, 1);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_BiasReluDropout_Unfused)->Arg(256)->Arg(2048);

void BM_LayerNorm(benchmark::State& state) {
  Fixture f;
  const bool fused = state.range(0) != 0;
  const int64_t rows = 2048, cols = 512;
  Tensor x = Tensor::zeros({rows, cols}, DType::kF32);
  Tensor g = Tensor::zeros({cols}, DType::kF32);
  Tensor b = Tensor::zeros({cols}, DType::kF32);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);
  for (auto _ : state) {
    kern::layernorm_fw(f.kc, fused ? kern::Impl::kLS2 : kern::Impl::kTorch, x, g, b, y,
                       mean, rstd);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_LayerNorm)->Arg(0)->Arg(1);  // 0 = torch decomposition, 1 = LS2

void BM_Softmax(benchmark::State& state) {
  Fixture f;
  const bool fused = state.range(0) != 0;
  Tensor x = Tensor::zeros({64, 8, 64, 64}, DType::kF32);
  Tensor y = Tensor::empty({64, 8, 64, 64}, DType::kF32);
  for (auto _ : state) {
    kern::attn_softmax_fw(f.kc, fused ? kern::Impl::kLS2 : kern::Impl::kTorch, x, y, true,
                          nullptr);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_Softmax)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
