// Fig. 12: ViT-B/32 and ViT-L/32 speedup over Hugging Face on image
// classification (samples/sec), batch sizes 16..256, 8x V100.
// Hugging Face runs native PyTorch ops == the Fairseq kernel policy.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct VitPerf {
  double samples_per_sec = 0;
  bool oom = false;
};

VitPerf measure_vit(System system, const models::VitConfig& cfg, int64_t batch) {
  VitPerf perf;
  try {
    SessionConfig sc;
    sc.system = system;
    sc.profile = simgpu::v100();
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    Session session(sc);
    models::Vit model(cfg, system, DType::kF16, 21, session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());
    data::ImageDataset ds(cfg.num_classes, 512, 21);
    auto b = ds.batch(0, batch, cfg, DType::kF16);
    const dist::ClusterConfig cluster{8, 1};
    (void)core::train_step(session, model, b, *trainer, cluster);
    const double t0 = session.device().clock_us();
    (void)core::train_step(session, model, b, *trainer, cluster);
    const double step_us = session.device().clock_us() - t0;
    perf.samples_per_sec =
        static_cast<double>(batch) * cluster.total_gpus() / (step_us * 1e-6);
  } catch (const mem::OutOfMemory&) {
    perf.oom = true;
  }
  return perf;
}

void run_panel(const char* name, const models::VitConfig& cfg) {
  print_header(std::string("Fig. 12: ") + name +
               " on CIFAR-style 224x224, 8x V100 — speedup vs Hugging Face");
  std::printf("%-10s %16s %16s %10s\n", "batch", "HF (samples/s)", "LS2 (samples/s)",
              "speedup");
  for (int64_t batch : {16, 32, 64, 128, 256}) {
    const VitPerf hf = measure_vit(System::kFairseq, cfg, batch);
    const VitPerf ls2 = measure_vit(System::kLightSeq2, cfg, batch);
    if (hf.oom || ls2.oom) {
      std::printf("%-10lld %16s %16s %10s\n", static_cast<long long>(batch), "OOM", "OOM",
                  "-");
      continue;
    }
    std::printf("%-10lld %16.1f %16.1f %9.2fx\n", static_cast<long long>(batch),
                hf.samples_per_sec, ls2.samples_per_sec,
                ls2.samples_per_sec / hf.samples_per_sec);
  }
}

}  // namespace

static int bench_body() {
  run_panel("ViT-B/32", models::VitConfig::b32());
  run_panel("ViT-L/32", models::VitConfig::l32());
  std::printf("\nPaper reference: 1.2-1.7x (B/32) and 1.2-1.5x (L/32); speedup decreases\n"
              "as batch size grows because GEMM's share of the step rises.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig12_vit", bench_body); }
