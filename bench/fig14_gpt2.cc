// Fig. 14: GPT-2 language modelling on WikiText-style data — iterations/sec
// speedup vs Hugging Face. GPT-2 Base (117M) on 8x V100, GPT-2 Large (762M)
// on 8x A100, batch sizes 8..24.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

double measure_gpt2(System system, const models::Gpt2Config& cfg,
                    const simgpu::DeviceProfile& profile, int64_t batch, int64_t seq_len)
try {
  SessionConfig sc;
  sc.system = system;
  sc.profile = profile;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  Session session(sc);
  models::Gpt2 model(cfg, system, DType::kF16, 29, session.param_alloc());
  optim::OptimConfig ocfg;
  auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());
  data::LmDataset ds(cfg.vocab, 8192, 29);
  auto b = ds.batch(0, batch, seq_len);
  const dist::ClusterConfig cluster{8, 1};
  (void)core::train_step(session, model, b, *trainer, cluster);
  const double t0 = session.device().clock_us();
  (void)core::train_step(session, model, b, *trainer, cluster);
  const double step_us = session.device().clock_us() - t0;
  return 1.0 / (step_us * 1e-6);  // iterations per second
} catch (const mem::OutOfMemory&) {
  return 0.0;  // printed as OOM
}

void run_panel(const char* name, const models::Gpt2Config& cfg,
               const simgpu::DeviceProfile& profile, int64_t seq_len) {
  print_header(std::string("Fig. 14: ") + name + " on " + profile.name +
               " — iterations/sec, speedup vs Hugging Face");
  std::printf("%-10s %14s %14s %10s\n", "batch", "HF (it/s)", "LS2 (it/s)", "speedup");
  for (int64_t batch : {8, 16, 24}) {
    const double hf = measure_gpt2(System::kFairseq, cfg, profile, batch, seq_len);
    const double ls2 = measure_gpt2(System::kLightSeq2, cfg, profile, batch, seq_len);
    if (hf == 0.0 || ls2 == 0.0) {
      std::printf("%-10lld %14s %14s %10s\n", static_cast<long long>(batch),
                  hf == 0 ? "OOM" : "-", ls2 == 0 ? "OOM" : "-", "-");
      continue;
    }
    std::printf("%-10lld %14.2f %14.2f %9.2fx\n", static_cast<long long>(batch), hf, ls2,
                ls2 / hf);
  }
}

}  // namespace

static int bench_body() {
  run_panel("GPT-2 Base (117M)", models::Gpt2Config::base(), simgpu::v100(), 512);
  // Large uses 256-token blocks: 24x512 full-activation training does not
  // fit 40 GB without activation checkpointing (which neither system models).
  run_panel("GPT-2 Large (762M)", models::Gpt2Config::large(), simgpu::a100(), 256);
  std::printf("\nPaper reference: 1.7-1.8x for GPT-2 Base on V100 and 1.6-1.9x for\n"
              "GPT-2 Large on A100.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig14_gpt2", bench_body); }
