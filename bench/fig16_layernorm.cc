// Fig. 16: LayerNorm forward kernel across the paper's (batch-token size,
// hidden dim) grid — PyTorch / TensorFlow / DeepSpeed / LightSeq2, V100.
// Grid axes are log2: tokens 2^9..2^13, hidden 2^8..2^13.
#include "bench_common.h"
#include "kernels/layernorm.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

double ln_time_us(kern::Impl impl, int64_t rows, int64_t cols, simgpu::Device& dev,
                  mem::CachingAllocator& alloc) {
  kern::KernelContext kc(dev, &alloc, 0);
  Tensor x = Tensor::empty({rows, cols}, DType::kF16, &alloc);
  Tensor g = Tensor::empty({cols}, DType::kF16, &alloc);
  Tensor b = Tensor::empty({cols}, DType::kF16, &alloc);
  Tensor y = Tensor::empty({rows, cols}, DType::kF16, &alloc);
  Tensor mean = Tensor::empty({rows}, DType::kF32, &alloc);
  Tensor rstd = Tensor::empty({rows}, DType::kF32, &alloc);
  const double t0 = dev.clock_us();
  kern::layernorm_fw(kc, impl, x, g, b, y, mean, rstd);
  return dev.clock_us() - t0;
}

}  // namespace

static int bench_body() {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  mem::CachingAllocator alloc(dev, mem::DeviceAllocator::Backing::kVirtual);

  print_header("Fig. 16: LayerNorm forward — speedup over PyTorch, V100");
  std::printf("%-16s %10s %10s %10s %10s\n", "(log2 tok,hid)", "PyTorch", "TF", "DeepSpeed",
              "LightSeq2");
  for (int lt = 9; lt <= 13; ++lt) {
    for (int lh = 8; lh <= 13; ++lh) {
      const int64_t rows = int64_t{1} << lt;
      const int64_t cols = int64_t{1} << lh;
      const double torch_t = ln_time_us(kern::Impl::kTorch, rows, cols, dev, alloc);
      const double tf_t = ln_time_us(kern::Impl::kTensorFlow, rows, cols, dev, alloc);
      const double ds_t = ln_time_us(kern::Impl::kDeepSpeed, rows, cols, dev, alloc);
      const double ls_t = ln_time_us(kern::Impl::kLS2, rows, cols, dev, alloc);
      std::printf("(%2d,%2d)%9s %9.2fx %9.2fx %9.2fx %9.2fx\n", lt, lh, "", 1.0,
                  torch_t / tf_t, torch_t / ds_t, torch_t / ls_t);
    }
  }
  std::printf("\nPaper reference: LightSeq2 ~4x regardless of shape; DeepSpeed's speedup\n"
              "collapses (below PyTorch) at large sizes; TensorFlow trails PyTorch except\n"
              "at very large element counts.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig16_layernorm", bench_body); }
