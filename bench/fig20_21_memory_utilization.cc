// Fig. 20 + Fig. 21: GPU memory occupancy and GPU utilisation over training
// time — Transformer-Base and Transformer-Big, Fairseq vs LightSeq2, one
// V100, batch 8192 tokens. Variable-length batches make the Fairseq caching
// allocator's footprint climb in steps and its utilisation wobble, while
// LightSeq2's capacity-scanned arena stays flat at ~99%.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct Timeline {
  std::vector<double> mem_gb;    // per step
  std::vector<double> util_pct;  // per step
  int64_t peak_gb_x100 = 0;
};

// Capacity scan (§IV-D): probe one forward+backward over the largest batch
// with a peak-tracking allocator; the arena is sized from the measured peak.
size_t capacity_scan(const models::TransformerConfig& cfg,
                     const std::vector<models::MtBatch>& batches) {
  simgpu::Device probe_dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  mem::CachingAllocator param_alloc(probe_dev, mem::DeviceAllocator::Backing::kVirtual);
  mem::MeasuringAllocator probe;
  layers::LayerContext ctx(probe_dev, &probe, layers::policy_for(System::kLightSeq2), 37);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 37, &param_alloc);
  model.forward(ctx, data::largest_batch(batches));
  model.backward(ctx);
  return static_cast<size_t>(probe.peak_bytes()) + (probe.peak_bytes() >> 4);
}

Timeline run(System system, const models::TransformerConfig& cfg, int steps) {
  data::MtDataset scan_ds(cfg.vocab, 512, 8, 72, 37);
  auto scan_batches = data::make_mt_batches(scan_ds, 8192, DType::kF16);

  SessionConfig sc;
  sc.system = system;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.record_timeline = true;
  if (system == System::kLightSeq2) {
    sc.arena_bytes = capacity_scan(cfg, scan_batches);
  }
  Session session(sc);
  models::Transformer model(cfg, system, DType::kF16, 37, session.param_alloc());
  optim::OptimConfig ocfg;
  auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());

  // Variable-length batches sorted ascending: later batches hold longer
  // sentences, forcing new allocator high watermarks (the Fig. 20 staircase).
  data::MtDataset ds(cfg.vocab, 512, 8, 72, 37);
  auto batches = data::make_mt_batches(ds, 8192, DType::kF16);

  Timeline tl;
  const int64_t perm = session.permanent_bytes();
  for (int step = 0; step < steps; ++step) {
    const double u0_busy = session.device().stats().busy_us;
    const double u0_total =
        session.device().stats().busy_us + session.device().stats().overhead_us;
    (void)core::train_step(session, model,
                           batches[static_cast<size_t>(step) % batches.size()], *trainer);
    const double busy = session.device().stats().busy_us - u0_busy;
    const double total = session.device().stats().busy_us +
                         session.device().stats().overhead_us - u0_total;
    tl.mem_gb.push_back(
        static_cast<double>(perm + session.activations().peak_bytes()) / 1e9);
    tl.util_pct.push_back(100.0 * busy / total);
  }
  tl.peak_gb_x100 = static_cast<int64_t>(tl.mem_gb.back() * 100);
  return tl;
}

void run_panel(const char* name, const models::TransformerConfig& cfg) {
  const int steps = 24;
  const Timeline fs = run(System::kFairseq, cfg, steps);
  const Timeline ls = run(System::kLightSeq2, cfg, steps);
  print_header(std::string("Fig. 20/21: ") + name +
               " — memory (GB) and utilisation (%) per step, V100, 8192 tokens");
  std::printf("%-6s %12s %12s %12s %12s\n", "step", "FS mem(GB)", "LS2 mem(GB)",
              "FS util(%)", "LS2 util(%)");
  for (int s = 0; s < steps; s += 2) {
    std::printf("%-6d %12.2f %12.2f %12.1f %12.1f\n", s, fs.mem_gb[static_cast<size_t>(s)],
                ls.mem_gb[static_cast<size_t>(s)], fs.util_pct[static_cast<size_t>(s)],
                ls.util_pct[static_cast<size_t>(s)]);
  }
  double fs_util = 0, ls_util = 0;
  for (int s = 0; s < steps; ++s) {
    fs_util += fs.util_pct[static_cast<size_t>(s)];
    ls_util += ls.util_pct[static_cast<size_t>(s)];
  }
  std::printf("final memory: Fairseq %.2f GB vs LightSeq2 %.2f GB (saving %.2f GB); "
              "mean utilisation: %.1f%% vs %.1f%%\n",
              fs.mem_gb.back(), ls.mem_gb.back(), fs.mem_gb.back() - ls.mem_gb.back(),
              fs_util / steps, ls_util / steps);
}

}  // namespace

static int bench_body() {
  run_panel("Transformer-Base (6e6d, 512d)", models::TransformerConfig::base(6, 6));
  run_panel("Transformer-Big (6e6d, 1024d)", models::TransformerConfig::big(6, 6));
  std::printf("\nPaper reference: Fairseq uses ~6 GB more and climbs over time as longer\n"
              "sequences arrive; LightSeq2 is flat from step 0. Utilisation: LightSeq2\n"
              "~99%% throughout; Fairseq fluctuates (87-95%%) from allocator stalls.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig20_21_memory_utilization", bench_body); }
