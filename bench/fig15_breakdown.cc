// Fig. 15: ablation of LightSeq2's two main ingredients on a 6e6d
// Transformer (8x V100): kernel-fusion only, trainer only, and the full
// system, vs batch-token size.
//
// Hybrids are composed exactly as the paper describes: layer policy and
// trainer are selected independently (the parameter registry is contiguous
// whenever the LightSeq2 trainer is used, per §IV-C).
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

MtPerf measure_hybrid(System layer_system, bool ls2_trainer,
                      const models::TransformerConfig& cfg, int64_t batch_tokens) {
  MtPerf perf;
  try {
    SessionConfig sc;
    sc.system = layer_system;
    sc.profile = simgpu::v100();
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    Session session(sc);
    // Contiguous workspace iff the LightSeq2 trainer needs it; the layer
    // kernels follow the session policy independently.
    models::Transformer model(cfg,
                              ls2_trainer ? System::kLightSeq2 : System::kFairseq,
                              DType::kF16, 17, session.param_alloc());
    optim::OptimConfig ocfg;
    std::unique_ptr<optim::Optimizer> trainer;
    if (ls2_trainer) {
      trainer = std::make_unique<optim::LightSeq2Trainer>(model.params(), ocfg,
                                                          session.param_alloc());
    } else {
      trainer = std::make_unique<optim::TorchTrainer>(model.params(), ocfg,
                                                      session.param_alloc());
    }
    data::MtDataset ds(cfg.vocab, 192, 8, 72, 17);
    auto batches = data::make_mt_batches(ds, batch_tokens, DType::kF16);
    const models::MtBatch& batch = data::largest_batch(batches);
    const dist::ClusterConfig cluster{8, 1};
    (void)core::train_step(session, model, batch, *trainer, cluster);
    const double t0 = session.device().clock_us();
    (void)core::train_step(session, model, batch, *trainer, cluster);
    perf.step_us = session.device().clock_us() - t0;
    perf.words_per_sec =
        static_cast<double>(batch.tokens) * cluster.total_gpus() / (perf.step_us * 1e-6);
  } catch (const mem::OutOfMemory&) {
    perf.oom = true;
  }
  return perf;
}

}  // namespace

int main() {
  const auto cfg = models::TransformerConfig::base(6, 6);
  print_header("Fig. 15: speedup breakdown, Transformer 6e6d on 8x V100 (vs Fairseq)");
  std::printf("%-12s %12s %14s %12s %10s\n", "batch_tokens", "kernel-fusion", "trainer-only",
              "full-LS2", "(ratios)");
  for (int64_t tokens : {512, 1024, 2048, 4096, 8192, 15000}) {
    const MtPerf base = measure_hybrid(System::kFairseq, false, cfg, tokens);
    const MtPerf fusion = measure_hybrid(System::kLightSeq2, false, cfg, tokens);
    const MtPerf trainer = measure_hybrid(System::kFairseq, true, cfg, tokens);
    const MtPerf full = measure_hybrid(System::kLightSeq2, true, cfg, tokens);
    std::printf("%-12lld %11.2fx %13.2fx %11.2fx\n", static_cast<long long>(tokens),
                fusion.words_per_sec / base.words_per_sec,
                trainer.words_per_sec / base.words_per_sec,
                full.words_per_sec / base.words_per_sec);
  }
  std::printf("\nPaper reference: full > fusion-only > trainer-only at small batches;\n"
              "all speedups decay as batch tokens grow (GEMM share rises); the gap\n"
              "between fusion-only and trainer-only widens with batch size.\n");
  return 0;
}
