// Fig. 15: ablation of LightSeq2's two main ingredients on a 6e6d
// Transformer (8x V100): kernel-fusion only, trainer only, and the full
// system, vs batch-token size.
//
// Hybrids are composed exactly as the paper describes: layer policy and
// trainer are selected independently (the parameter registry is contiguous
// whenever the LightSeq2 trainer is used, per §IV-C).
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

/// Per-step launch accounting for the measured step (satellite of the graph
/// PR: the launch-bound claim must be measurable before/after replay).
struct LaunchPerf {
  MtPerf perf;
  int64_t launches = 0;      ///< kernel executions in the measured step
  double launch_gap_us = 0;  ///< per-kernel dispatch gaps paid (0 once replayed)
  bool replayed = false;
};

LaunchPerf measure_hybrid(System layer_system, bool ls2_trainer,
                          const models::TransformerConfig& cfg, int64_t batch_tokens,
                          bool graph_replay = false, bool arena = false) {
  LaunchPerf lp;
  MtPerf& perf = lp.perf;
  try {
    data::MtDataset ds(cfg.vocab, 192, 8, 72, 17);
    auto batches = data::make_mt_batches(ds, batch_tokens, DType::kF16);
    const models::MtBatch& batch = data::largest_batch(batches);

    SessionConfig sc;
    sc.system = layer_system;
    sc.profile = simgpu::v100();
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.graph_capture = graph_replay;
    // The launch-accounting runs use LightSeq2's real memory strategy: the
    // capacity-scanned arena (also what certifies the step capture-safe —
    // the warm caching allocator still stalls occasionally when its free
    // lists re-bucket, poisoning capture).
    if (arena) sc.arena_bytes = capacity_scan(cfg, batch);
    Session session(sc);
    // Contiguous workspace iff the LightSeq2 trainer needs it; the layer
    // kernels follow the session policy independently.
    models::Transformer model(cfg,
                              ls2_trainer ? System::kLightSeq2 : System::kFairseq,
                              DType::kF16, 17, session.param_alloc());
    optim::OptimConfig ocfg;
    std::unique_ptr<optim::Optimizer> trainer;
    if (ls2_trainer) {
      trainer = std::make_unique<optim::LightSeq2Trainer>(model.params(), ocfg,
                                                          session.param_alloc());
    } else {
      trainer = std::make_unique<optim::TorchTrainer>(model.params(), ocfg,
                                                      session.param_alloc());
    }
    const dist::ClusterConfig cluster{8, 1};
    // Warm-up; with graph_replay a second step is captured so the measured
    // step replays the graph.
    (void)core::train_step(session, model, batch, *trainer, cluster);
    if (graph_replay) (void)core::train_step(session, model, batch, *trainer, cluster);
    const auto s0 = session.device().stats();
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, model, batch, *trainer, cluster);
    const auto s1 = session.device().stats();
    perf.step_us = session.device().clock_us() - t0;
    perf.stages = times;
    perf.words_per_sec =
        static_cast<double>(batch.tokens) * cluster.total_gpus() / (perf.step_us * 1e-6);
    lp.launches = s1.launches - s0.launches;
    lp.launch_gap_us = s1.launch_gap_us - s0.launch_gap_us;
    lp.replayed = times.replayed;
  } catch (const mem::OutOfMemory&) {
    perf.oom = true;
  }
  return lp;
}

}  // namespace

static int bench_body() {
  const auto cfg = models::TransformerConfig::base(6, 6);
  print_header("Fig. 15: speedup breakdown, Transformer 6e6d on 8x V100 (vs Fairseq)");
  std::printf("%-12s %12s %14s %12s %10s\n", "batch_tokens", "kernel-fusion", "trainer-only",
              "full-LS2", "(ratios)");
  // The kFairseq baselines are reused by the launch-accounting table below.
  std::vector<LaunchPerf> bases;
  const std::vector<int64_t> token_sweep{512, 1024, 2048, 4096, 8192, 15000};
  for (int64_t tokens : token_sweep) {
    bases.push_back(measure_hybrid(System::kFairseq, false, cfg, tokens));
    const MtPerf& base = bases.back().perf;
    const MtPerf fusion = measure_hybrid(System::kLightSeq2, false, cfg, tokens).perf;
    const MtPerf trainer = measure_hybrid(System::kFairseq, true, cfg, tokens).perf;
    const MtPerf full = measure_hybrid(System::kLightSeq2, true, cfg, tokens).perf;
    std::printf("%-12lld %11.2fx %13.2fx %11.2fx\n", static_cast<long long>(tokens),
                fusion.words_per_sec / base.words_per_sec,
                trainer.words_per_sec / base.words_per_sec,
                full.words_per_sec / base.words_per_sec);
  }
  std::printf("\nPaper reference: full > fusion-only > trainer-only at small batches;\n"
              "all speedups decay as batch tokens grow (GEMM share rises); the gap\n"
              "between fusion-only and trainer-only widens with batch size.\n");

  // Launch accounting: how launch-bound is the step, and what graph replay
  // (SessionConfig::graph_capture) recovers. Launch-gap fraction is the
  // per-kernel dispatch idle time over the whole step; it is largest at
  // small batches (kernels are short, the 4.5 us gap is not) and a replayed
  // step pays none of it.
  print_header("Launch accounting: launches/step and launch-gap fraction (full LS2)");
  std::printf("%-12s %10s %10s %10s %12s %12s %8s\n", "batch_tokens", "fairseq",
              "ls2", "ls2 gap%", "eager_us", "replay_us", "replay");
  for (size_t i = 0; i < token_sweep.size(); ++i) {
    const int64_t tokens = token_sweep[i];
    const LaunchPerf& base = bases[i];
    const LaunchPerf eager = measure_hybrid(System::kLightSeq2, true, cfg, tokens,
                                            /*graph_replay=*/false, /*arena=*/true);
    const LaunchPerf replay = measure_hybrid(System::kLightSeq2, true, cfg, tokens,
                                             /*graph_replay=*/true, /*arena=*/true);
    if (base.perf.oom || eager.perf.oom || replay.perf.oom) {
      std::printf("%-12lld %10s\n", static_cast<long long>(tokens), "OOM");
      continue;
    }
    // A poisoned capture would silently print an eager-vs-eager 1.00x; the
    // whole point of this table is that the replay column really replays.
    LS2_CHECK(replay.replayed) << "graph capture poisoned at " << tokens << " tokens";
    std::printf("%-12lld %10lld %10lld %9.1f%% %12.0f %12.0f %7.2fx\n",
                static_cast<long long>(tokens), static_cast<long long>(base.launches),
                static_cast<long long>(eager.launches),
                100.0 * eager.launch_gap_us / eager.perf.step_us, eager.perf.step_us,
                replay.perf.step_us, eager.perf.step_us / replay.perf.step_us);
  }
  std::printf("\nLaunch gaps dominate small-batch steps; graph replay removes them\n"
              "(one graph launch per step), so the replay win decays with batch size\n"
              "exactly like the fusion win does.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig15_breakdown", bench_body); }
