// 3D parallelism (DESIGN.md §7 + §9): every (dp, tp, pp) tiling of an
// 8-GPU cluster (2 nodes x 4 A100s) training Transformer-Big FP16 on one
// FIXED global batch — the composition the paper's hybrid stack builds to.
//
// The sweep holds the global batch constant, so rows/replica = 256/dp and
// throughput = global tokens / step time is directly comparable across
// tilings. Reported per configuration:
//   * per-step time and throughput;
//   * the 1F1B pipeline costs: bubble (rank-0 lane idle), boundary p2p
//     total and exposed;
//   * the DP gradient ring: wire bytes (per-stage shards under PP) and the
//     blocking tail after the last bucket;
//   * rank-0 memory: parameters+grads and the activation peak — PP divides
//     both by the stage count.
//
// The headline rows: a pp > 1 tiling beats BOTH pure-DP (8,1,1) — whose
// cross-node ring over the full parameter set dwarfs its 32-row compute —
// and pure-TP (2,4,1), whose per-sublayer collectives tax every block.
// The capacity section shows the other PP win: an arena sized for the
// pp=4 rank-0 stage trains, while the unpartitioned model overflows it.
//
// Machine-readable output: bench/fig_3d.json (schema-checked by
// ci/check_bench_json.py in CI). Run with --trace to also export the
// (4,1,2) tiling's 1F1B schedule — per-rank lanes, stage/microbatch span
// names — as bench/fig_3d_trace.json (open in chrome://tracing/Perfetto).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

constexpr int kWorld = 8;  // 2 nodes x 4 GPUs
constexpr int64_t kGlobalRows = 256;

dist::ClusterConfig cluster_3d(int dp, int tp, int pp, int m) {
  dist::ClusterConfig c;
  c.gpus_per_node = 4;
  c.nodes = 2;
  c.tensor_parallel = tp;
  c.pipeline_parallel = pp;
  c.microbatches = pp > 1 ? m : 1;
  LS2_CHECK_EQ(dp * tp * pp, kWorld) << "tiling must cover the cluster";
  return c;
}

struct Row {
  int dp = 1, tp = 1, pp = 1, m = 1;
  double step_us = 0;
  double tokens_per_sec = 0;
  double pp_bubble_us = 0, pp_comm_us = 0, pp_exposed_us = 0;
  double sync_blocking_us = 0;
  int64_t wire_bytes = 0;
  int64_t params_bytes = 0, act_peak_bytes = 0;
};

/// First `rows` sentence pairs of the batch (PP slices along dim 0).
models::MtBatch take_rows(const models::MtBatch& big, int64_t rows) {
  LS2_CHECK_GE(big.src_ids.shape()[0], rows);
  models::MtBatch b = big;
  b.src_ids = big.src_ids.slice(0, rows);
  b.tgt_in = big.tgt_in.slice(0, rows);
  b.tgt_out = big.tgt_out.slice(0, rows);
  b.src_lens = big.src_lens.slice(0, rows);
  b.tgt_lens = big.tgt_lens.slice(0, rows);
  b.tokens = big.tokens * rows / big.src_ids.shape()[0];
  return b;
}

/// Warm-up + measured train_step of Transformer-Big under one (dp, tp, pp)
/// tiling. Each DP replica trains its 256/dp-row share of the global batch;
/// rank 0's stage-0 shard is the reported device footprint.
Row measure(const models::TransformerConfig& cfg, const models::MtBatch& global,
            int dp, int tp, int pp, int m, bool trace = false) {
  Row row;
  row.dp = dp;
  row.tp = tp;
  row.pp = pp;
  row.m = pp > 1 ? m : 1;
  const models::MtBatch batch = take_rows(global, kGlobalRows / dp);

  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.profile = simgpu::a100();
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.seed = 17;
  sc.record_timeline = trace;
  Session session(sc);
  const dist::ClusterConfig cluster = cluster_3d(dp, tp, pp, m);
  dist::ProcessGroup pg(cluster);
  if (tp > 1) session.ctx().tp_group = &pg;

  models::TransformerConfig c = cfg;
  c.tp.size = tp;
  c.tp.simulate_peers = false;
  models::Transformer model(c, System::kLightSeq2, DType::kF16, 17,
                            session.param_alloc());
  optim::OptimConfig ocfg;
  auto trainer = optim::make_trainer(System::kLightSeq2, model.params(), ocfg,
                                     session.param_alloc());

  (void)core::train_step(session, model, batch, *trainer, cluster);  // warm-up
  const double t0 = session.device().clock_us();
  auto [times, res] = core::train_step(session, model, batch, *trainer, cluster);
  row.step_us = session.device().clock_us() - t0;
  row.tokens_per_sec =
      static_cast<double>(batch.tokens) * dp / (row.step_us * 1e-6);
  row.pp_bubble_us = times.pp_bubble_us;
  row.pp_comm_us = times.pp_comm_us;
  row.pp_exposed_us = times.pp_exposed_us;
  row.sync_blocking_us = times.sync_blocking_us;
  row.wire_bytes = times.wire_bytes;
  row.params_bytes = session.permanent_bytes();
  row.act_peak_bytes = session.activations().peak_bytes();
  if (trace) {
    std::filesystem::create_directories("bench");
    session.device().timeline().write_chrome_trace("bench/fig_3d_trace.json");
    std::printf("wrote 1F1B Chrome trace to bench/fig_3d_trace.json\n");
  }
  return row;
}

std::vector<Row> g_rows;

struct CapacityDemo {
  size_t arena_bytes = 0;
  size_t pp1_peak_bytes = 0;
  bool pp4_fits = false;
  bool pp1_overflows = false;
} g_capacity;

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_3d.json");
  out << "{\n  \"figure\": \"fig_3d\",\n  \"schema\": 1,\n  \"model\": "
         "\"transformer-big\",\n  \"profile\": \"a100\",\n  \"world\": 8,\n  "
         "\"global_rows\": 256,\n  \"configs\": [";
  char buf[512];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"dp\": %d, \"tp\": %d, \"pp\": %d, \"microbatches\": %d, "
        "\"step_us\": %.1f, \"tokens_per_sec\": %.0f, \"pp_bubble_us\": %.1f, "
        "\"pp_comm_us\": %.1f, \"pp_exposed_us\": %.1f, \"sync_blocking_us\": %.1f, "
        "\"wire_mb\": %.1f, \"params_mb\": %.1f, \"act_peak_mb\": %.1f}",
        i == 0 ? "" : ",", r.dp, r.tp, r.pp, r.m, r.step_us,
        r.tokens_per_sec, r.pp_bubble_us, r.pp_comm_us, r.pp_exposed_us,
        r.sync_blocking_us, r.wire_bytes / 1e6, r.params_bytes / 1e6,
        r.act_peak_bytes / 1e6);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\n  ],\n  \"capacity\": {\"model\": \"transformer-big\", "
                "\"arena_mb\": %.1f, \"pp1_need_mb\": %.1f, \"pp4_fits\": %s, "
                "\"pp1_overflows\": %s}\n}\n",
                g_capacity.arena_bytes / 1e6, g_capacity.pp1_peak_bytes / 1e6,
                g_capacity.pp4_fits ? "true" : "false",
                g_capacity.pp1_overflows ? "true" : "false");
  out << buf;
  std::printf("\nwrote %zu configs to bench/fig_3d.json\n", g_rows.size());
}

}  // namespace

static int bench_body(int argc, char** argv) {
  const bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;
  const models::TransformerConfig cfg = models::TransformerConfig::big();
  data::MtDataset ds(cfg.vocab, 2048, 8, 70, 17);
  auto batches = data::make_mt_batches(ds, /*batch_tokens=*/32768, DType::kF16);
  const models::MtBatch& global = data::largest_batch(batches);
  LS2_CHECK_GE(global.src_ids.shape()[0], kGlobalRows)
      << "bucketed batch too small for the fixed global batch";

  print_header(
      "3D parallelism: (dp, tp, pp) tilings of 2 nodes x 4 A100s, "
      "Transformer-Big FP16, fixed 256-row global batch");
  std::printf("%3s %3s %3s %3s %10s %12s %11s %11s %11s %11s %9s %9s\n", "dp", "tp",
              "pp", "m", "step_us", "tok/s", "bubble_us", "pp_comm_us", "pp_exposed",
              "sync_block", "params_MB", "act_MB");

  auto report = [&](const Row& r) {
    g_rows.push_back(r);
    std::printf("%3d %3d %3d %3d %10.0f %12.0f %11.0f %11.0f %11.0f %11.0f %9.1f %9.1f\n",
                r.dp, r.tp, r.pp, r.m, r.step_us, r.tokens_per_sec, r.pp_bubble_us,
                r.pp_comm_us, r.pp_exposed_us, r.sync_blocking_us,
                r.params_bytes / 1e6, r.act_peak_bytes / 1e6);
  };

  // Microbatch counts are tuned per tiling: deeper pipes want more chunks to
  // shrink the (pp-1)/(m+pp-1) bubble, but each extra chunk re-pays the
  // per-launch overheads, so shallow pipes run coarse.
  const int tilings[][4] = {{8, 1, 1, 1}, {4, 2, 1, 1}, {2, 4, 1, 1}, {4, 1, 2, 4},
                            {2, 2, 2, 4}, {1, 4, 2, 4}, {2, 1, 4, 4}, {1, 2, 4, 8}};
  for (const auto& t : tilings)
    report(measure(cfg, global, t[0], t[1], t[2], t[3],
                   trace && t[2] > 1 && t[1] == 1 && t[0] == 4));

  // The sweep's point: some pipelined tiling out-runs both non-PP extremes.
  double best_pp = 0, pure_dp = 0, pure_tp = 0;
  for (const Row& r : g_rows) {
    if (r.pp > 1) best_pp = std::max(best_pp, r.tokens_per_sec);
    if (r.dp == kWorld) pure_dp = r.tokens_per_sec;
    if (r.tp == 4 && r.pp == 1) pure_tp = std::max(pure_tp, r.tokens_per_sec);
  }
  std::printf("\nbest pp>1: %.0f tok/s vs pure-DP %.0f, pure-TP %.0f\n", best_pp,
              pure_dp, pure_tp);
  LS2_CHECK(best_pp > pure_dp && best_pp > pure_tp)
      << "a pipelined tiling no longer beats the pure-DP/pure-TP extremes";

  std::printf(
      "\nPure DP at 8 ranks drowns in the cross-node ring over the full parameter\n"
      "set; PP shrinks each rank's DP shard to 1/pp of the model and overlaps the\n"
      "per-stage rings with the remaining microbatch backwards, paying only the\n"
      "1F1B bubble (pp-1)/(m+pp-1) and the boundary activation hops in exchange.\n");

  // --- Capacity: an arena sized for the pp=4 rank-0 stage trains at pp=4
  // but overflows when the whole model's activations land on one device.
  print_header("Capacity: Transformer-Big arena sized by the pp=4 stage-0 peak");
  {
    const models::MtBatch batch = take_rows(global, kGlobalRows);

    auto run_pp = [&](int pp, size_t arena_bytes, size_t* peak_out) {
      SessionConfig sc;
      sc.system = System::kLightSeq2;
      sc.profile = simgpu::a100();
      sc.mode = simgpu::ExecMode::kModelOnly;
      sc.dtype = DType::kF16;
      sc.seed = 17;
      sc.arena_bytes = arena_bytes;
      Session session(sc);
      models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 17,
                                session.param_alloc());
      optim::OptimConfig ocfg;
      auto trainer = optim::make_trainer(System::kLightSeq2, model.params(), ocfg,
                                         session.param_alloc());
      try {
          dist::ClusterConfig one_node;  // memory demo: dp only pads sync time
        one_node.gpus_per_node = 4;
        one_node.pipeline_parallel = pp;
        one_node.microbatches = pp > 1 ? 16 : 1;
        (void)core::train_step(session, model, batch, *trainer, one_node);
        if (peak_out) *peak_out = session.activations().peak_bytes();
        return true;
      } catch (const mem::OutOfMemory&) {
        return false;
      }
    };

    // Probe both peaks on the dynamic allocator, then size the arena off the
    // pp=4 stage-0 footprint (arena carving needs a little slack over the
    // caching allocator's byte count).
    size_t pp4_peak = 0;
    LS2_CHECK(run_pp(4, 0, &pp4_peak)) << "pp=4 probe failed";
    LS2_CHECK(run_pp(1, 0, &g_capacity.pp1_peak_bytes)) << "pp=1 probe failed";
    g_capacity.arena_bytes = pp4_peak + pp4_peak / 4 + (1 << 20);

    g_capacity.pp4_fits = run_pp(4, g_capacity.arena_bytes, nullptr);
    g_capacity.pp1_overflows = !run_pp(1, g_capacity.arena_bytes, nullptr);
    std::printf("arena (pp=4 peak + slack): %8.1f MB\n", g_capacity.arena_bytes / 1e6);
    std::printf("pp=1 would need:           %8.1f MB\n",
                g_capacity.pp1_peak_bytes / 1e6);
    std::printf("pp=4 in that arena:        %s\n", g_capacity.pp4_fits ? "fits" : "OOM");
    std::printf("pp=1 in that arena:        %s\n",
                g_capacity.pp1_overflows ? "OOM (as it must)" : "fits (?!)");
    LS2_CHECK(g_capacity.pp4_fits && g_capacity.pp1_overflows)
        << "the capacity demonstration regressed";
  }

  write_json();
  return 0;
}

int main(int argc, char** argv) {
  return ls2::bench::guarded_main("fig_3d", [&] { return bench_body(argc, argv); });
}
