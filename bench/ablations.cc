// Ablations for the design choices DESIGN.md calls out:
//   1. Fig. 8 shared-block plan vs naive per-tensor allocation (memory);
//   2. Softmax template auto-tuning vs any fixed template (§IV-B);
//   3. layer-batched cross-attention K/V projection vs per-layer (Fig. 5);
//   4. pipelined per-bucket optimizer update + FP16 wire vs the serial
//      synchronize-then-update schedule.
#include "bench_common.h"
#include "kernels/softmax.h"
#include "memory/block_plan.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

void ablate_memory_blocks() {
  print_header("Ablation: Fig. 8 shared-block plan — attention backward bytes");
  std::printf("%-26s %14s %14s %8s\n", "(B, L, H, N)", "naive bytes", "plan bytes",
              "saving");
  const std::tuple<int, int, int, int> shapes[] = {
      {8, 32, 512, 8}, {8, 72, 1024, 16}, {32, 64, 1024, 16}, {8, 256, 512, 8}};
  for (auto [B, L, H, N] : shapes) {
    mem::BlockPlan plan(mem::attention_backward_plan(B, L, H, N, /*elem=*/2));
    char label[64];
    std::snprintf(label, sizeof(label), "(%d, %d, %d, %d)", B, L, H, N);
    std::printf("%-26s %14zu %14zu %7.1f%%\n", label, plan.naive_bytes(),
                plan.total_bytes(),
                100.0 * (1.0 - static_cast<double>(plan.total_bytes()) /
                                   static_cast<double>(plan.naive_bytes())));
  }
  std::printf("Formula check: plan = 3*BLH + max(BL^2*N, 3*BLH); naive = 9*BLH + BL^2*N.\n");
}

void ablate_softmax_tuner() {
  print_header("Ablation: Softmax template auto-tuner vs fixed templates (modeled "
               "achieved bandwidth)");
  std::printf("%-18s", "(rows, cols)");
  for (const auto& c : kern::softmax_candidates()) std::printf(" %9s", c.tag);
  std::printf(" %9s\n", "tuned");
  const std::pair<int64_t, int64_t> shapes[] = {
      {1 << 20, 16}, {1 << 17, 64}, {1 << 14, 256}, {1 << 12, 1024}, {1 << 10, 4096}};
  for (auto [rows, cols] : shapes) {
    char label[32];
    std::snprintf(label, sizeof(label), "(%lld, %lld)", static_cast<long long>(rows),
                  static_cast<long long>(cols));
    std::printf("%-18s", label);
    for (const auto& c : kern::softmax_candidates()) {
      std::printf(" %9.3f", kern::softmax_config_efficiency(c, rows, cols));
    }
    const auto best = kern::tune_softmax(rows, cols);
    std::printf(" %9.3f (%s)\n", kern::softmax_config_efficiency(best, rows, cols),
                best.tag);
  }
  std::printf("No fixed template wins everywhere; the tuner always matches the best.\n");
}

void ablate_cross_attention() {
  print_header("Ablation: layer-batched cross-attention K/V projection (Fig. 5)");
  std::printf("%-10s %16s %16s %10s\n", "dec", "per-layer (wps)", "batched (wps)",
              "gain");
  for (int dec : {6, 12, 24}) {
    auto cfg = models::TransformerConfig::base(6, dec);
    // Same LightSeq2 kernels; only the K/V projection strategy differs.
    auto run = [&](bool batched) {
      SessionConfig sc;
      sc.system = System::kLightSeq2;
      sc.mode = simgpu::ExecMode::kModelOnly;
      sc.dtype = DType::kF16;
      Session session(sc);
      session.ctx().policy.layer_batched_cross_attn = batched;
      models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 41,
                                session.param_alloc());
      optim::OptimConfig ocfg;
      optim::LightSeq2Trainer trainer(model.params(), ocfg, session.param_alloc());
      data::MtDataset ds(cfg.vocab, 128, 8, 48, 41);
      auto batches = data::make_mt_batches(ds, 4096, DType::kF16);
      const auto& batch = data::largest_batch(batches);
      (void)core::train_step(session, model, batch, trainer);
      const double t0 = session.device().clock_us();
      (void)core::train_step(session, model, batch, trainer);
      return static_cast<double>(batch.tokens) /
             ((session.device().clock_us() - t0) * 1e-6);
    };
    const double per_layer = run(false);
    const double batched = run(true);
    std::printf("%-10d %16.0f %16.0f %9.2f%%\n", dec, per_layer, batched,
                100.0 * (batched / per_layer - 1.0));
  }
  std::printf("Batching all decoder layers' K/V into one GEMM + one split removes\n"
              "2n GEMM launches and n bias/reshape launches; the gain grows with depth.\n");
}

void ablate_pipelined_update() {
  print_header("Ablation: pipelined per-bucket update + FP16 wire (2x8 A100, FP16 "
               "Transformer-Big)\nexposed sync / exposed update / tail = sync+update "
               "on the critical path");
  std::printf("%-28s %10s %10s %10s %9s %9s\n", "schedule", "sync(ms)", "update(ms)",
              "tail(ms)", "drop%", "hid.upd%");
  const auto cfg = models::TransformerConfig::big(6, 6);
  const auto profile = simgpu::a100();
  auto run = [&](bool overlap, bool pipeline, DType wire) {
    dist::ClusterConfig cluster{8, 2};
    cluster.overlap = overlap;
    cluster.pipeline_update = pipeline;
    cluster.wire_dtype = wire;
    return measure_mt(System::kLightSeq2, cfg, profile, 4096, cluster);
  };
  const MtPerf blocking = run(false, false, DType::kF32);
  const MtPerf serial = run(true, false, DType::kF32);
  const MtPerf pipelined = run(true, true, DType::kF32);
  const MtPerf f16wire = run(true, true, DType::kF16);
  const double base_tail = serial.stages.sync_us + serial.stages.update_us;
  auto row = [&](const char* label, const MtPerf& p) {
    const double tail = p.stages.sync_us + p.stages.update_us;
    std::printf("%-28s %10.2f %10.2f %10.2f %8.0f%% %8.0f%%\n", label,
                p.stages.sync_us * 1e-3, p.stages.update_us * 1e-3, tail * 1e-3,
                100.0 * (1.0 - tail / base_tail),
                p.stages.update_us > 0
                    ? 100.0 * p.stages.update_overlapped_us / p.stages.update_us
                    : 0.0);
  };
  row("blocking ring (no overlap)", blocking);
  row("overlap, serial update", serial);
  row("overlap, pipelined update", pipelined);
  row("  + FP16 wire", f16wire);
  std::printf("The serial-update row is the drop%% baseline. Pipelining retires each\n"
              "bucket's optimizer work under the comm drain; the FP16 wire then halves\n"
              "the bytes the drain still has to move.\n");
}

}  // namespace

static int bench_body() {
  ablate_memory_blocks();
  ablate_softmax_tuner();
  ablate_cross_attention();
  ablate_pipelined_update();
  return 0;
}

int main() { return ls2::bench::guarded_main("ablations", bench_body); }
