// Fig. 3: time cost of the four training stages (forward / backward /
// synchronize / update) for Fairseq vs LightSeq2 — Transformer-24e24d,
// WMT14-style batches, 8x A100.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

static int bench_body() {
  const auto cfg = models::TransformerConfig::base(24, 24);
  const auto profile = simgpu::a100();
  // The paper's figure shows four SERIAL stages; pin the update pipeline off
  // so "synchronize" stays an isolated stage (with it on, the update lane
  // hides the whole drain and sync reads ~0 — see fig22d for that study).
  dist::ClusterConfig cluster{8, 1};
  cluster.pipeline_update = false;
  const int64_t batch_tokens = 4096;

  print_header("Fig. 3: per-stage step time (ms), Transformer-24e24d, 8x A100");
  std::printf("%-14s %10s %10s %12s %10s %10s\n", "system", "forward", "backward",
              "synchronize", "update", "total");
  MtPerf fs, ls2p;
  for (System sys : {System::kFairseq, System::kLightSeq2}) {
    const MtPerf p = measure_mt(sys, cfg, profile, batch_tokens, cluster);
    std::printf("%-14s %10.2f %10.2f %12.2f %10.2f %10.2f\n", layers::system_name(sys),
                p.stages.forward_us / 1e3, p.stages.backward_us / 1e3,
                p.stages.sync_us / 1e3, p.stages.update_us / 1e3,
                p.stages.total_us() / 1e3);
    (sys == System::kFairseq ? fs : ls2p) = p;
  }
  std::printf("\nstage speedups (Fairseq/LightSeq2): fw %.2fx  bw %.2fx  sync %.2fx  "
              "update %.2fx\n",
              fs.stages.forward_us / ls2p.stages.forward_us,
              fs.stages.backward_us / ls2p.stages.backward_us,
              fs.stages.sync_us / std::max(1.0, ls2p.stages.sync_us),
              fs.stages.update_us / ls2p.stages.update_us);
  std::printf("Paper reference: compute and update dominate; LightSeq2 shrinks forward/\n"
              "backward and (especially) the parameter update; synchronize is unchanged.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig03_training_stages", bench_body); }
