// Fig. 19: layer-wise forward/backward speedup of LightSeq2 over the
// PyTorch (Fairseq) implementation vs sequence length 10..100, with
// Transformer-Big layer dimensions (hidden 1024, 16 heads, FFN 4096).
#include "bench_common.h"
#include "layers/criterion_layer.h"
#include "layers/decoder_layer.h"
#include "layers/embedding_layer.h"
#include "layers/encoder_layer.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct FwBw {
  double fw_us = 0;
  double bw_us = 0;
};

// Per-layer timing harness: build the layer under `system`, run forward and
// backward once (after warm-up) in model-only mode.
template <typename BuildAndRun>
FwBw measure(System system, BuildAndRun&& run) {
  SessionConfig sc;
  sc.system = system;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  Session session(sc);
  return run(session);
}

layers::TransformerLayerConfig big_layer() {
  layers::TransformerLayerConfig cfg;
  cfg.hidden = 1024;
  cfg.heads = 16;
  cfg.ffn_dim = 4096;
  return cfg;
}

FwBw run_embedding(core::Session& s, int64_t L) {
  layers::ParamRegistry reg;
  layers::EmbeddingConfig cfg;
  cfg.vocab = 32768;
  cfg.hidden = 1024;
  cfg.max_len = 128;
  layers::EmbeddingLayer layer(reg, "embed", cfg);
  reg.materialize(DType::kF16, s.config().system == System::kLightSeq2, Rng(1),
                  s.param_alloc());
  Tensor ids = Tensor::zeros({8, L}, DType::kI32);
  auto& dev = s.device();
  for (int warm = 0; warm < 2; ++warm) {
    const double t0 = dev.clock_us();
    Tensor y = layer.forward(s.ctx(), ids);
    const double t1 = dev.clock_us();
    layer.backward(s.ctx(), y);
    if (warm == 1) return {t1 - t0, dev.clock_us() - t1};
  }
  return {};
}

FwBw run_encoder(core::Session& s, int64_t L) {
  layers::ParamRegistry reg;
  layers::TransformerEncoderLayer layer(reg, "enc", big_layer());
  reg.materialize(DType::kF16, s.config().system == System::kLightSeq2, Rng(1),
                  s.param_alloc());
  Tensor x = Tensor::empty({8, L, 1024}, DType::kF16);
  auto& dev = s.device();
  for (int warm = 0; warm < 2; ++warm) {
    const double t0 = dev.clock_us();
    Tensor y = layer.forward(s.ctx(), x, nullptr);
    const double t1 = dev.clock_us();
    layer.backward(s.ctx(), y);
    if (warm == 1) return {t1 - t0, dev.clock_us() - t1};
  }
  return {};
}

FwBw run_decoder(core::Session& s, int64_t L) {
  layers::ParamRegistry reg;
  layers::TransformerDecoderLayer layer(reg, "dec", big_layer());
  reg.materialize(DType::kF16, s.config().system == System::kLightSeq2, Rng(1),
                  s.param_alloc());
  Tensor x = Tensor::empty({8, L, 1024}, DType::kF16);
  Tensor k = Tensor::empty({8, 16, L, 64}, DType::kF16);
  Tensor v = Tensor::empty({8, 16, L, 64}, DType::kF16);
  Tensor dk = Tensor::empty({8, 16, L, 64}, DType::kF16);
  Tensor dv = Tensor::empty({8, 16, L, 64}, DType::kF16);
  auto& dev = s.device();
  for (int warm = 0; warm < 2; ++warm) {
    const double t0 = dev.clock_us();
    Tensor y = layer.forward(s.ctx(), x, k, v, nullptr, nullptr);
    const double t1 = dev.clock_us();
    layer.backward(s.ctx(), y, dk, dv);
    if (warm == 1) return {t1 - t0, dev.clock_us() - t1};
  }
  return {};
}

FwBw run_criterion(core::Session& s, int64_t L) {
  layers::ParamRegistry reg;
  layers::CriterionConfig cfg;
  cfg.vocab = 32768;
  cfg.hidden = 1024;
  layers::CriterionLayer layer(reg, "criterion", cfg);
  reg.materialize(DType::kF16, s.config().system == System::kLightSeq2, Rng(1),
                  s.param_alloc());
  Tensor x = Tensor::empty({8, L, 1024}, DType::kF16);
  Tensor targets = Tensor::zeros({8, L}, DType::kI32);
  auto& dev = s.device();
  for (int warm = 0; warm < 2; ++warm) {
    const double t0 = dev.clock_us();
    layer.forward(s.ctx(), x, targets);
    const double t1 = dev.clock_us();
    layer.backward(s.ctx());
    if (warm == 1) return {t1 - t0, dev.clock_us() - t1};
  }
  return {};
}

}  // namespace

static int bench_body() {
  print_header("Fig. 19: layer-wise LightSeq2 speedup over Fairseq vs sequence length "
               "(Transformer-Big dims, batch 8, V100)");
  std::printf("%-8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "seq_len", "embed fw",
              "embed bw", "enc fw", "enc bw", "dec fw", "dec bw", "crit fw", "crit bw");
  for (int64_t L : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    FwBw base_emb, ls2_emb, base_enc, ls2_enc, base_dec, ls2_dec, base_crit, ls2_crit;
    base_emb = measure(System::kFairseq, [&](core::Session& s) { return run_embedding(s, L); });
    ls2_emb = measure(System::kLightSeq2, [&](core::Session& s) { return run_embedding(s, L); });
    base_enc = measure(System::kFairseq, [&](core::Session& s) { return run_encoder(s, L); });
    ls2_enc = measure(System::kLightSeq2, [&](core::Session& s) { return run_encoder(s, L); });
    base_dec = measure(System::kFairseq, [&](core::Session& s) { return run_decoder(s, L); });
    ls2_dec = measure(System::kLightSeq2, [&](core::Session& s) { return run_decoder(s, L); });
    base_crit = measure(System::kFairseq, [&](core::Session& s) { return run_criterion(s, L); });
    ls2_crit = measure(System::kLightSeq2, [&](core::Session& s) { return run_criterion(s, L); });
    std::printf("%-8lld | %8.2fx %8.2fx | %8.2fx %8.2fx | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                static_cast<long long>(L), base_emb.fw_us / ls2_emb.fw_us,
                base_emb.bw_us / ls2_emb.bw_us, base_enc.fw_us / ls2_enc.fw_us,
                base_enc.bw_us / ls2_enc.bw_us, base_dec.fw_us / ls2_dec.fw_us,
                base_dec.bw_us / ls2_dec.bw_us, base_crit.fw_us / ls2_crit.fw_us,
                base_crit.bw_us / ls2_crit.bw_us);
  }
  std::printf("\nPaper reference: forward speedups exceed backward; encoder/decoder\n"
              "speedups decay with sequence length (GEMMs saturate) while embedding and\n"
              "criterion speedups stay stable.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig19_layers", bench_body); }
