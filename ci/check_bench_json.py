#!/usr/bin/env python3
"""Schema checks for the machine-readable bench outputs.

Every fig* bench that makes a perf/memory claim writes a bench/<name>.json;
CI fails if a file is missing, unparsable, or violates its figure's schema —
a bench that silently writes nothing must not pass. Run from the build
directory (where ci.sh smoke-runs the benches):

    python3 ci/check_bench_json.py [fig22 fig_launch_graph fig_serve fig_tp fig_3d]

With no arguments, every known figure is checked.
"""
import json
import sys
from pathlib import Path


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(name):
    path = Path("bench") / f"{name}.json"
    if not path.exists():
        fail(f"{path} was not written (did the bench silently skip its output?)")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if doc.get("figure") != name or doc.get("schema") != 1:
        fail(f"{path}: figure/schema header mismatch: {doc.get('figure')}/{doc.get('schema')}")
    rows = doc.get("configs")
    if not isinstance(rows, list) or not rows:
        fail(f"{path} has no configs")
    return doc, rows


def require(row, keys, where):
    for key in keys:
        if key not in row:
            fail(f"{where}: missing key '{key}' in {row}")


def check_fig22():
    _, rows = load("fig22")
    for r in rows:
        require(r, ("section", "model", "system", "gpus", "words_per_sec", "step_us",
                    "sync_exposed_us", "sync_overlapped_us", "sync_blocking_us",
                    "wire_bytes"), "fig22")
        if r["step_us"] <= 0 or r["words_per_sec"] <= 0:
            fail(f"fig22: non-positive timing in {r}")
    overlap = [r for r in rows if r["gpus"] > 1]
    if not overlap:
        fail("fig22 has no multi-GPU rows")
    if not any(r["sync_overlapped_us"] > 0 for r in overlap):
        fail("fig22: overlapped sync never hides any communication")


def check_fig_launch_graph():
    _, rows = load("fig_launch_graph")
    for r in rows:
        require(r, ("section", "model", "batch_tokens", "eager_step_us",
                    "replay_step_us", "speedup", "replayed"), "fig_launch_graph")
    replayed = [r for r in rows if r["replayed"]]
    if not replayed:
        fail("fig_launch_graph: no replayed rows")
    small = min(replayed, key=lambda r: r["batch_tokens"])
    if small["speedup"] < 1.2:
        fail("fig_launch_graph: replay must win >= 1.2x at the launch-bound point "
             f"(got {small['speedup']:.2f}x)")


def check_fig_serve():
    _, rows = load("fig_serve")
    for r in rows:
        if r["section"] not in ("batching", "graph"):
            fail(f"fig_serve: unknown section in {r}")
        require(r, ("profile", "slots", "rate_per_sec", "requests",
                    "tokens_per_sec_speedup", "decode_steps"), "fig_serve")
    batching = [r for r in rows if r["section"] == "batching"]
    graph = [r for r in rows if r["section"] == "graph"]
    if not batching or not graph:
        fail("fig_serve: missing a section")
    if not all(r["tokens_per_sec_speedup"] >= 1.5 for r in batching):
        fail("fig_serve: continuous batching must be >= 1.5x static tokens/sec")
    small = min(graph, key=lambda r: r["slots"])
    if small["tokens_per_sec_speedup"] <= 1.2 or small["replayed_steps"] <= 0:
        fail("fig_serve: graph-replayed decode must beat eager on the "
             "launch-bound profile")


def check_fig_tp():
    doc, rows = load("fig_tp")
    models = set()
    for r in rows:
        require(r, ("model", "profile", "tp", "dp", "step_us", "tp_comm_us",
                    "tp_exposed_us", "params_mb", "act_peak_mb", "max_live_mb"),
                "fig_tp")
        models.add(r["model"])
        if r["tp"] * r["dp"] != 4:
            fail(f"fig_tp: tp x dp must cover the 4-GPU node in {r}")
        if r["tp"] == 1 and r["tp_comm_us"] != 0:
            fail(f"fig_tp: TP=1 must charge no TP communication in {r}")
        if r["tp"] > 1 and r["tp_comm_us"] <= 0:
            fail(f"fig_tp: sharded run charged no TP communication in {r}")
    if len(models) < 4:
        fail(f"fig_tp: expected the four-model zoo, got {sorted(models)}")
    for model in models:
        by_tp = {r["tp"]: r for r in rows if r["model"] == model}
        if not {1, 2, 4} <= set(by_tp):
            fail(f"fig_tp: model {model} missing a TP degree")
        if not by_tp[4]["params_mb"] < by_tp[2]["params_mb"] < by_tp[1]["params_mb"]:
            fail(f"fig_tp: per-device parameters must shrink with TP for {model}")
    cap = doc.get("capacity")
    if not cap:
        fail("fig_tp: missing the capacity section")
    require(cap, ("model", "arena_mb", "tp1_need_mb", "tp4_fits", "tp1_overflows"),
            "fig_tp.capacity")
    if not (cap["tp4_fits"] is True and cap["tp1_overflows"] is True):
        fail("fig_tp: the capacity headline regressed — Transformer-Big must fit "
             "at TP=4 in an arena TP=1 overflows")
    if not cap["arena_mb"] < cap["tp1_need_mb"]:
        fail("fig_tp: the TP=4 arena must be smaller than the TP=1 requirement")


def check_fig_3d():
    doc, rows = load("fig_3d")
    world = doc.get("world")
    if world != 8:
        fail(f"fig_3d: expected the 8-GPU sweep, got world={world}")
    for r in rows:
        require(r, ("dp", "tp", "pp", "microbatches", "step_us", "tokens_per_sec",
                    "pp_bubble_us", "pp_comm_us", "pp_exposed_us",
                    "sync_blocking_us", "wire_mb", "params_mb", "act_peak_mb"),
                "fig_3d")
        if r["dp"] * r["tp"] * r["pp"] != world:
            fail(f"fig_3d: dp x tp x pp must cover the {world}-GPU cluster in {r}")
        if r["step_us"] <= 0 or r["tokens_per_sec"] <= 0:
            fail(f"fig_3d: non-positive timing in {r}")
        if r["pp"] == 1 and (r["pp_bubble_us"] != 0 or r["pp_comm_us"] != 0):
            fail(f"fig_3d: pp=1 must charge no pipeline costs in {r}")
        if r["pp"] > 1 and r["pp_comm_us"] <= 0:
            fail(f"fig_3d: pipelined run charged no boundary p2p in {r}")
        if r["pp"] > 1 and r["microbatches"] < r["pp"]:
            fail(f"fig_3d: 1F1B needs microbatches >= pp in {r}")
    if not any(r["pp"] > 1 for r in rows) or not any(r["pp"] == 1 for r in rows):
        fail("fig_3d: the sweep must cover both pp=1 and pp>1 tilings")
    best_pp = max(r["tokens_per_sec"] for r in rows if r["pp"] > 1)
    pure_dp = max(r["tokens_per_sec"] for r in rows if r["dp"] == world)
    pure_tp = max(r["tokens_per_sec"] for r in rows if r["tp"] == 4 and r["pp"] == 1)
    if not (best_pp > pure_dp and best_pp > pure_tp):
        fail("fig_3d: some pipelined tiling must out-run both pure-DP and "
             f"pure-TP (pp {best_pp:.0f} vs dp {pure_dp:.0f} / tp {pure_tp:.0f})")
    cap = doc.get("capacity")
    if not cap:
        fail("fig_3d: missing the capacity section")
    require(cap, ("model", "arena_mb", "pp1_need_mb", "pp4_fits", "pp1_overflows"),
            "fig_3d.capacity")
    if not (cap["pp4_fits"] is True and cap["pp1_overflows"] is True):
        fail("fig_3d: the capacity headline regressed — Transformer-Big must fit "
             "at pp=4 in an arena pp=1 overflows")
    if not cap["arena_mb"] < cap["pp1_need_mb"]:
        fail("fig_3d: the pp=4 arena must be smaller than the pp=1 requirement")


def check_fig_fault():
    _, rows = load("fig_fault")
    by_section = {}
    for r in rows:
        by_section.setdefault(r.get("section"), []).append(r)
    for section in ("checkpoint", "recovery", "serve"):
        if section not in by_section:
            fail(f"fig_fault: missing the '{section}' section")

    # Async checkpointing must be near-free at the paper-scale cadence.
    ckpt = by_section["checkpoint"]
    for r in ckpt:
        require(r, ("every", "steps", "step_us", "total_us", "checkpoint_stage_us",
                    "snapshots", "snapshot_mb", "overhead_frac"), "fig_fault.checkpoint")
        if r["every"] > 0 and r["snapshots"] <= 0:
            fail(f"fig_fault: cadence {r['every']} took no snapshots: {r}")
    if not any(r["every"] == 0 for r in ckpt):
        fail("fig_fault: checkpoint sweep needs the checkpoint-free baseline row")
    paper = max((r for r in ckpt if r["every"] > 0), key=lambda r: r["every"], default=None)
    if paper is None:
        fail("fig_fault: checkpoint sweep has no cadence > 0")
    if not paper["overhead_frac"] < 0.05:
        fail("fig_fault: checkpoint overhead at the paper cadence "
             f"(every {paper['every']}) must stay under 5% "
             f"(got {paper['overhead_frac'] * 100:.2f}%)")

    # Time-to-recover: both policies, every run actually failed and recovered.
    rec = by_section["recovery"]
    for r in rec:
        require(r, ("policy", "failure_rate", "steps", "failures", "steps_completed",
                    "mean_recover_us", "max_recover_us", "total_us", "dp_size",
                    "dp_lost"), "fig_fault.recovery")
        if r["policy"] not in ("rollback", "elastic"):
            fail(f"fig_fault: unknown recovery policy in {r}")
        if r["failures"] < 1 or r["mean_recover_us"] <= 0:
            fail(f"fig_fault: recovery row saw no recovered failure: {r}")
        if r["steps_completed"] < r["steps"]:
            fail(f"fig_fault: recovery run did not complete its steps: {r}")
    for policy in ("rollback", "elastic"):
        if not any(r["policy"] == policy for r in rec):
            fail(f"fig_fault: recovery sweep is missing the '{policy}' policy")
    # Same seeded schedule: elastic skips the respawn wait, so per-failure
    # recovery must be at least as fast as rollback at the same rate.
    rollback = {r["failure_rate"]: r for r in rec if r["policy"] == "rollback"}
    for r in rec:
        if r["policy"] == "elastic" and r["failure_rate"] in rollback:
            if r["mean_recover_us"] > rollback[r["failure_rate"]]["mean_recover_us"]:
                fail("fig_fault: elastic shrink recovered slower than rollback at "
                     f"rate {r['failure_rate']} — the skipped respawn wait vanished")

    # Degraded serving: shedding must engage and bound the served tail.
    for r in by_section["serve"]:
        require(r, ("requests", "rate_per_sec", "open_p99_ms", "degraded_p99_ms",
                    "shed_requests", "served", "deadline_retired"), "fig_fault.serve")
        if r["shed_requests"] <= 0:
            fail(f"fig_fault: the burst never engaged load shedding: {r}")
        if not r["degraded_p99_ms"] < r["open_p99_ms"]:
            fail(f"fig_fault: shedding did not bound p99: {r}")
        if r["served"] + r["shed_requests"] != r["requests"]:
            fail(f"fig_fault: served + shed must cover every request: {r}")


def check_fig_fleet():
    _, rows = load("fig_fleet")
    by_section = {}
    for r in rows:
        by_section.setdefault(r.get("section"), []).append(r)
    for section in ("scale", "hedge", "availability"):
        if section not in by_section:
            fail(f"fig_fleet: missing the '{section}' section")

    # Replica scaling: more replicas must mean more tokens/sec, and nothing
    # may be lost at any fleet size.
    scale = sorted(by_section["scale"], key=lambda r: r["replicas"])
    for r in scale:
        require(r, ("replicas", "requests", "rate_per_sec", "tokens_per_sec",
                    "p50_ms", "p99_ms", "served", "lost"), "fig_fleet.scale")
        if r["lost"] != 0:
            fail(f"fig_fleet: scale run lost requests: {r}")
        if r["served"] != r["requests"]:
            fail(f"fig_fleet: fault-free scale run shed requests: {r}")
    if len(scale) < 2:
        fail("fig_fleet: scale sweep needs at least two replica counts")
    for prev, cur in zip(scale, scale[1:]):
        if not cur["tokens_per_sec"] > prev["tokens_per_sec"]:
            fail("fig_fleet: tokens/sec must grow with the fleet "
                 f"({prev['replicas']} -> {cur['replicas']} replicas)")

    # Hedged dispatch: the duplicates must fire, win, and cut the tail
    # without inflating the median.
    for r in by_section["hedge"]:
        require(r, ("requests", "rate_per_sec", "jsq_p99_ms", "hedged_p99_ms",
                    "jsq_p50_ms", "hedged_p50_ms", "hedges_fired", "hedge_wins",
                    "hedge_cancels"), "fig_fleet.hedge")
        if r["hedges_fired"] <= 0 or r["hedge_wins"] <= 0:
            fail(f"fig_fleet: the straggler never tripped a winning hedge: {r}")
        if not r["hedged_p99_ms"] < r["jsq_p99_ms"]:
            fail(f"fig_fleet: hedging did not cut p99 under the straggler: {r}")
        if r["hedged_p50_ms"] > r["jsq_p50_ms"] * 1.05:
            fail(f"fig_fleet: hedging bought the tail with the median: {r}")

    # Availability: a death plus a rolling reload, with zero lost requests.
    for r in by_section["availability"]:
        require(r, ("requests", "served", "shed", "lost", "deaths", "reloads",
                    "redispatches", "p99_ms"), "fig_fleet.availability")
        if r["lost"] != 0:
            fail(f"fig_fleet: availability run lost requests: {r}")
        if r["served"] + r["shed"] != r["requests"]:
            fail(f"fig_fleet: served + shed must cover every request: {r}")
        if r["deaths"] < 1 or r["reloads"] < 1:
            fail(f"fig_fleet: the availability run must survive a death AND "
                 f"a rolling reload: {r}")


def check_fig_obs():
    _, rows = load("fig_obs")
    by_section = {}
    for r in rows:
        by_section.setdefault(r.get("section"), []).append(r)
    for section in ("snapshot", "roofline", "roofline_coverage", "overhead"):
        if section not in by_section:
            fail(f"fig_obs: missing the '{section}' section")

    # Golden snapshot + streaming-histogram quantile sanity.
    for r in by_section["snapshot"]:
        require(r, ("snapshot_bytes", "identical_rerun", "served", "latency_count",
                    "latency_min_us", "latency_p50_us", "latency_p99_us",
                    "latency_max_us", "step_p50_us", "step_p99_us",
                    "availability"), "fig_obs.snapshot")
        if r["identical_rerun"] is not True:
            fail(f"fig_obs: the seeded snapshot was not byte-identical on re-run: {r}")
        if not (0 < r["latency_min_us"] <= r["latency_p50_us"]
                <= r["latency_p99_us"] <= r["latency_max_us"]):
            fail(f"fig_obs: latency quantiles out of order: {r}")
        if not 0 < r["step_p50_us"] <= r["step_p99_us"]:
            fail(f"fig_obs: step-time quantiles out of order: {r}")
        if not 0 < r["availability"] <= 1:
            fail(f"fig_obs: availability outside (0, 1]: {r}")

    # Roofline: every family's bound-side utilization is a real efficiency
    # fraction, and the families + remainders partition device busy time.
    for r in by_section["roofline"]:
        require(r, ("family", "launches", "exec_us", "share", "utilization",
                    "compute_bound", "tensor_core"), "fig_obs.roofline")
        if not 0 < r["utilization"] <= 1:
            fail(f"fig_obs: roofline utilization outside (0, 1]: {r}")
        if r["exec_us"] <= 0 or r["launches"] <= 0 or r["share"] <= 0:
            fail(f"fig_obs: empty roofline family row: {r}")
    cov = by_section["roofline_coverage"][0]
    require(cov, ("families", "kernel_us", "exposed_comm_us", "other_busy_us",
                  "busy_us", "coverage"), "fig_obs.roofline_coverage")
    if not abs(cov["coverage"] - 1.0) <= 0.01:
        fail("fig_obs: kernel + exposed comm + other busy must cover busy_us "
             f"within 1% (got {cov['coverage']:.6f})")

    # Overhead: instrumentation must never touch the simulated clock, and
    # its host-side cost must stay under 1% of a step.
    for r in by_section["overhead"]:
        require(r, ("steps", "sim_step_us_enabled", "sim_step_us_disabled",
                    "sim_delta_us", "host_step_us_enabled",
                    "host_step_us_disabled", "overhead_pct"), "fig_obs.overhead")
        if r["sim_delta_us"] != 0:
            fail(f"fig_obs: metrics changed the simulated step time: {r}")
        if not r["overhead_pct"] < 1.0:
            fail(f"fig_obs: instrumentation overhead >= 1% of a step: {r}")


def check_fig_page():
    _, rows = load("fig_page")
    by_section = {}
    for r in rows:
        by_section.setdefault(r.get("section"), []).append(r)
    for section in ("capacity", "sharing"):
        if section not in by_section:
            fail(f"fig_page: missing the '{section}' section")

    # Capacity: at a FIXED KV byte budget, paging must admit >= 4x the
    # concurrent residents of the degenerate one-page-per-sequence layout,
    # serve or shed every request (never lose one), and keep the decode
    # step graph-replayable through page churn.
    for r in by_section["capacity"]:
        require(r, ("kv_bytes", "degen_slots", "paged_slots",
                    "degen_peak_resident", "paged_peak_resident",
                    "resident_ratio", "served", "shed", "preemptions",
                    "replayed_steps"), "fig_page.capacity")
        if r["resident_ratio"] < 4.0:
            fail("fig_page: paging must hold >= 4x the residents at fixed "
                 f"KV bytes (got {r['resident_ratio']:.2f}x)")
        if r["served"] + r["shed"] != 64 or r["shed"] != 0:
            fail(f"fig_page: the capacity burst lost or shed requests: {r}")
        if r["replayed_steps"] <= 0:
            fail(f"fig_page: paged decode never replayed its graph: {r}")

    # Sharing: the system-prompt burst must actually hit the prefix
    # registry, and sharing must shrink prefill page traffic.
    for r in by_section["sharing"]:
        require(r, ("requests", "total_pages", "excl_prefill_pages",
                    "shared_prefill_pages", "shared_page_hits", "hit_rate",
                    "excl_peak_resident", "shared_peak_resident", "served",
                    "shed"), "fig_page.sharing")
        if r["shared_page_hits"] <= 0 or not 0 < r["hit_rate"] < 1:
            fail(f"fig_page: prefix sharing never hit the page registry: {r}")
        if not r["shared_prefill_pages"] < r["excl_prefill_pages"]:
            fail(f"fig_page: sharing did not shrink prefill page traffic: {r}")
        if r["served"] + r["shed"] != r["requests"]:
            fail(f"fig_page: the sharing burst lost requests: {r}")


CHECKS = {
    "fig22": check_fig22,
    "fig_launch_graph": check_fig_launch_graph,
    "fig_serve": check_fig_serve,
    "fig_tp": check_fig_tp,
    "fig_3d": check_fig_3d,
    "fig_fault": check_fig_fault,
    "fig_fleet": check_fig_fleet,
    "fig_obs": check_fig_obs,
    "fig_page": check_fig_page,
}


def main(argv):
    names = argv[1:] or list(CHECKS)
    for name in names:
        if name not in CHECKS:
            fail(f"unknown figure '{name}' (known: {', '.join(CHECKS)})")
        CHECKS[name]()
        print(f"check_bench_json: bench/{name}.json OK")


if __name__ == "__main__":
    main(sys.argv)
