#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/lightseq2.h"

namespace ls2::models {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

TransformerConfig tiny_mt_config() {
  TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 32;
  return cfg;
}

MtBatch tiny_batch(int64_t vocab, uint64_t seed = 5) {
  data::MtDataset ds(vocab, 16, 3, 9, seed);
  auto batches = data::make_mt_batches(ds, 64, DType::kF32);
  return batches.front();
}

SessionConfig session_config(System sys, DType dtype = DType::kF32) {
  SessionConfig sc;
  sc.system = sys;
  sc.dtype = dtype;
  return sc;
}

TEST(TransformerTest, ForwardBackwardRunsAndLossFinite) {
  Session s(session_config(System::kLightSeq2));
  Transformer model(tiny_mt_config(), System::kLightSeq2, DType::kF32, 1);
  model.params().zero_grads();
  MtBatch batch = tiny_batch(64);
  auto res = model.forward(s.ctx(), batch);
  EXPECT_GT(res.tokens, 0);
  EXPECT_TRUE(std::isfinite(res.loss_sum));
  // Near-uniform logits at init: loss ~ log(V) per token.
  EXPECT_NEAR(res.loss_per_token(), std::log(64.0f), 1.5f);
  model.backward(s.ctx());
  // Every parameter must have received some gradient signal.
  int zero_grads = 0;
  model.params().for_each([&](const std::string& name, Tensor, Tensor g) {
    double norm = 0;
    for (float v : g.to_vector()) norm += std::abs(v);
    if (norm == 0.0) ++zero_grads;
  });
  EXPECT_EQ(zero_grads, 0);
}

// The whole-model statement of "no change in training behavior": Fairseq and
// LightSeq2 policies produce identical losses and gradients — which also
// proves layer-batched cross attention (Fig. 5b) computes exactly what the
// per-layer baseline computes.
TEST(TransformerTest, SystemsProduceIdenticalLossAndGrads) {
  MtBatch batch = tiny_batch(64);
  std::optional<float> ref_loss;
  std::vector<float> ref_flat;
  for (System sys : {System::kFairseq, System::kFairseqApex, System::kLightSeq2}) {
    Session s(session_config(sys));
    Transformer model(tiny_mt_config(), sys, DType::kF32, /*seed=*/7);
    model.params().zero_grads();
    auto res = model.forward(s.ctx(), batch);
    model.backward(s.ctx());
    std::vector<float> flat;
    model.params().for_each([&](const std::string&, Tensor, Tensor g) {
      const auto v = g.to_vector();
      flat.insert(flat.end(), v.begin(), v.end());
    });
    if (!ref_loss) {
      ref_loss = res.loss_sum;
      ref_flat = flat;
    } else {
      EXPECT_NEAR(res.loss_sum, *ref_loss, 1e-4f) << layers::system_name(sys);
      ASSERT_EQ(flat.size(), ref_flat.size());
      for (size_t i = 0; i < flat.size(); ++i) {
        ASSERT_NEAR(flat[i], ref_flat[i], 2e-4f) << layers::system_name(sys) << " " << i;
      }
    }
  }
}

TEST(TransformerTest, ParameterCountMatchesAnalytic) {
  TransformerConfig cfg = tiny_mt_config();
  Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
  EXPECT_EQ(model.params().total_elements(), cfg.parameter_count());
  // And the paper's models are the right order of magnitude.
  EXPECT_NEAR(static_cast<double>(TransformerConfig::big(6, 6).parameter_count()), 2.9e8,
              1.0e8);
}

TEST(Gpt2Test, CausalLmLearnsMarkovStream) {
  Session s(session_config(System::kLightSeq2));
  Gpt2Config cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 16;
  cfg.dropout = 0.0f;
  Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 1);
  optim::OptimConfig ocfg;
  ocfg.lr = 1e-3f;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::LmDataset ds(32, 4096, 3);

  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 200; ++step) {
    auto [times, res] = core::train_step(s, model, ds.batch(step, 8, 12), trainer);
    if (step == 0) first_loss = res.loss_per_token();
    last_loss = res.loss_per_token();
  }
  EXPECT_LT(last_loss, first_loss * 0.9f) << "LM did not learn";
}

TEST(BertTest, ClassifierTrainsAboveChance) {
  Session s(session_config(System::kLightSeq2));
  BertConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 16;
  cfg.dropout = 0.0f;
  Bert model(cfg, System::kLightSeq2, DType::kF32, 1);
  optim::OptimConfig ocfg;
  ocfg.lr = 2e-3f;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::ClsDataset ds(64, 256, 16, 4);

  int64_t correct = 0, total = 0;
  for (int step = 0; step < 120; ++step) {
    auto [times, res] = core::train_step(s, model, ds.batch(step, 8, 12), trainer);
    if (step >= 100) {  // accuracy over the last stretch
      correct += res.correct;
      total += res.total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(VitTest, ForwardBackwardAndShapes) {
  Session s(session_config(System::kLightSeq2));
  VitConfig cfg;
  cfg.image = 64;
  cfg.patch = 16;  // 16 patches + CLS = 17 tokens
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.num_classes = 4;
  cfg.dropout = 0.1f;
  Vit model(cfg, System::kLightSeq2, DType::kF32, 1);
  model.params().zero_grads();
  data::ImageDataset ds(4, 64, 9);
  auto batch = ds.batch(0, 4, cfg, DType::kF32);
  auto res = model.forward(s.ctx(), batch);
  EXPECT_EQ(res.total, 4);
  EXPECT_TRUE(std::isfinite(res.loss));
  model.backward(s.ctx());
  // Patch projection and positional embedding must have gradients.
  bool pos_has_grad = false;
  model.params().for_each([&](const std::string& name, Tensor, Tensor g) {
    if (name == "vit.pos_embed") {
      for (float v : g.to_vector()) {
        if (v != 0.0f) pos_has_grad = true;
      }
    }
  });
  EXPECT_TRUE(pos_has_grad);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/ls2_ckpt_test.bin";
  TransformerConfig cfg = tiny_mt_config();
  Transformer a(cfg, System::kLightSeq2, DType::kF32, /*seed=*/11);
  save_checkpoint(a.params(), path);

  Transformer b(cfg, System::kFairseq, DType::kF32, /*seed=*/99);  // different init
  load_checkpoint(b.params(), path);
  for (int i = 0; i < a.params().size(); ++i) {
    EXPECT_EQ(a.params().value({i}).to_vector(), b.params().value({i}).to_vector())
        << a.params().name({i});
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, Fp16RoundTripWithinHalfPrecision) {
  const std::string path = "/tmp/ls2_ckpt_f16.bin";
  TransformerConfig cfg = tiny_mt_config();
  Transformer a(cfg, System::kLightSeq2, DType::kF16, 11);
  save_checkpoint(a.params(), path);
  Transformer b(cfg, System::kLightSeq2, DType::kF16, 99);
  load_checkpoint(b.params(), path);
  for (int i = 0; i < a.params().size(); ++i) {
    EXPECT_EQ(a.params().value({i}).to_vector(), b.params().value({i}).to_vector());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingParameterThrows) {
  const std::string path = "/tmp/ls2_ckpt_missing.bin";
  layers::ParamRegistry small;
  small.declare("only", Shape{4}, layers::Init::kOne);
  small.materialize(DType::kF32, false, Rng(1));
  save_checkpoint(small, path);

  layers::ParamRegistry bigger;
  bigger.declare("only", Shape{4}, layers::Init::kOne);
  bigger.declare("more", Shape{4}, layers::Init::kOne);
  bigger.materialize(DType::kF32, false, Rng(1));
  EXPECT_THROW(load_checkpoint(bigger, path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TranslatorMapsFairseqNames) {
  EXPECT_EQ(fairseq_to_ls2_name("encoder.layers.0.self_attn_layer_norm.weight"),
            "encoder.layers.0.self_attn.ln.gamma");
  EXPECT_EQ(fairseq_to_ls2_name("decoder.layers.3.encoder_attn.q_proj.weight"),
            "decoder.layers.3.cross_attn.q_proj.weight");
  EXPECT_EQ(fairseq_to_ls2_name("encoder.layers.1.fc1.weight"),
            "encoder.layers.1.ffn.fc1.weight");
  EXPECT_EQ(fairseq_to_ls2_name("encoder.embed_tokens.weight"),
            "encoder.embed.token_embedding");
}

}  // namespace
}  // namespace ls2::models
