// The pipelined update stage: range-granular optimizer updates
// (Optimizer::step_range), the bucket-complete callback, FP16-wire gradient
// compression, dynamic loss scaling, and the end-to-end claim that applying
// the optimizer per communication bucket as each all-reduce lands cuts the
// exposed synchronize+update tail at paper scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "core/lightseq2.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using core::StepTimes;
using layers::System;

layers::ParamRegistry make_params(DType dtype, bool contiguous, uint64_t seed = 1) {
  layers::ParamRegistry reg;
  reg.declare("w1", Shape{32, 16}, layers::Init::kXavier);
  reg.declare("b1", Shape{32}, layers::Init::kZero);
  reg.declare("w2", Shape{8, 32}, layers::Init::kXavier);
  reg.declare("gamma", Shape{16}, layers::Init::kOne);
  reg.declare("w3", Shape{48, 8}, layers::Init::kXavier);
  reg.declare("b3", Shape{48}, layers::Init::kZero);
  reg.materialize(dtype, contiguous, Rng(seed));
  return reg;
}

void fill_grads(layers::ParamRegistry& reg, uint64_t seed) {
  Rng rng(seed);
  int i = 0;
  reg.for_each([&](const std::string&, Tensor, Tensor g) {
    rng.fill_normal(g, static_cast<uint64_t>(100 + i++), 0.0f, 0.05f);
  });
}

std::vector<float> all_values(const layers::ParamRegistry& reg) {
  std::vector<float> all;
  reg.for_each([&](const std::string&, Tensor v, Tensor) {
    const auto vec = v.to_vector();
    all.insert(all.end(), vec.begin(), vec.end());
  });
  return all;
}

/// A randomized partition of the flat gradient buffer into param-aligned
/// byte ranges, returned in shuffled order (bucket updates are
/// order-independent).
std::vector<std::pair<size_t, size_t>> random_partition(
    const layers::ParamRegistry& reg, std::mt19937& gen) {
  std::vector<size_t> cuts{0, reg.flat_grad_bytes()};
  std::bernoulli_distribution coin(0.5);
  for (int i = 1; i < reg.size(); ++i) {
    if (coin(gen)) cuts.push_back(reg.grad_byte_span(i).first);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) ranges.push_back({cuts[i], cuts[i + 1]});
  std::shuffle(ranges.begin(), ranges.end(), gen);
  return ranges;
}

struct Ctx {
  Ctx() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 3) {}
  simgpu::Device dev;
  kern::KernelContext kc;
};

// The tentpole invariant: for every trainer, a full step equals the sum of
// its bucket updates bitwise — for Adam and SGD, FP32 and FP16 models, and
// randomized bucket partitions applied in randomized order.
TEST(StepRangeTest, BucketedUpdateBitwiseMatchesMonolithic) {
  for (int which = 0; which < 3; ++which) {
    for (optim::Algo algo : {optim::Algo::kAdam, optim::Algo::kSgd}) {
      for (DType dt : {DType::kF32, DType::kF16}) {
        const bool contiguous = which == 2;  // LS2 needs the workspace
        Ctx ca, cb;
        layers::ParamRegistry ra = make_params(dt, contiguous);
        layers::ParamRegistry rb = make_params(dt, contiguous);
        optim::OptimConfig cfg;
        cfg.algo = algo;
        cfg.lr = 0.01f;
        std::unique_ptr<optim::Optimizer> oa, ob;
        auto make = [&](layers::ParamRegistry& r) -> std::unique_ptr<optim::Optimizer> {
          if (which == 0) return std::make_unique<optim::TorchTrainer>(r, cfg);
          if (which == 1) return std::make_unique<optim::ApexTrainer>(r, cfg);
          return std::make_unique<optim::LightSeq2Trainer>(r, cfg);
        };
        oa = make(ra);
        ob = make(rb);
        std::mt19937 gen(1234u + static_cast<unsigned>(which * 10) +
                         (algo == optim::Algo::kAdam ? 0 : 100) +
                         (dt == DType::kF16 ? 1000 : 0));
        for (int step = 0; step < 3; ++step) {
          fill_grads(ra, static_cast<uint64_t>(step));
          fill_grads(rb, static_cast<uint64_t>(step));
          oa->step(ca.kc);  // monolithic
          ob->begin_step();  // randomized bucket cover
          for (const auto& [lo, hi] : random_partition(rb, gen)) {
            ob->step_range(cb.kc, lo, hi);
          }
          ob->end_step();
          const auto va = all_values(ra);
          const auto vb = all_values(rb);
          ASSERT_EQ(va.size(), vb.size());
          for (size_t i = 0; i < va.size(); ++i) {
            ASSERT_EQ(va[i], vb[i])
                << "trainer " << oa->name() << " algo "
                << (algo == optim::Algo::kAdam ? "adam" : "sgd") << " dtype "
                << dtype_name(dt) << " step " << step << " element " << i;
          }
        }
        EXPECT_EQ(oa->steps_taken(), ob->steps_taken());
      }
    }
  }
}

// End-to-end: a pipelined train_step (per-bucket updates as transfers land)
// leaves parameters bitwise identical to the serial synchronize-then-update
// schedule.
TEST(PipelinedTrainStepTest, ParamsBitwiseMatchUnpipelined) {
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;

  data::MtDataset ds(32, 32, 3, 7, 5);
  auto batches = data::make_mt_batches(ds, 48, DType::kF32);
  ASSERT_GE(batches.size(), 2u);

  auto run = [&](bool pipelined) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    auto session = std::make_unique<Session>(sc);
    auto model = std::make_unique<models::Transformer>(cfg, System::kLightSeq2,
                                                       DType::kF32, /*seed=*/3);
    optim::OptimConfig ocfg;
    ocfg.lr = 1e-3f;
    auto trainer = std::make_unique<optim::LightSeq2Trainer>(model->params(), ocfg);
    dist::ClusterConfig cluster{8, 1};
    cluster.pipeline_update = pipelined;
    for (int step = 0; step < 3; ++step) {
      auto [times, res] = core::train_step(*session, *model,
                                           batches[static_cast<size_t>(step) % 2],
                                           *trainer, cluster);
      // Stage identity must hold in the pipelined schedule too.
      EXPECT_NEAR(times.total_us(),
                  times.forward_us + times.backward_us + times.sync_us + times.update_us,
                  1e-9);
      if (pipelined) EXPECT_GE(times.update_overlapped_us, 0.0);
    }
    return std::make_pair(std::move(session), std::move(model));
  };

  auto [sa, ma] = run(true);
  auto [sb, mb] = run(false);
  EXPECT_EQ(dist::find_divergence({&ma->params(), &mb->params()}), "");
}

TEST(BucketDoneCallbackTest, FiresOncePerBucketInCompletionOrder) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 16;
  models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);

  // A near-zero ring latency keeps effective_bucket_bytes at the configured
  // cap, forcing several buckets even for this small model.
  simgpu::DeviceProfile profile = simgpu::generic();
  profile.allreduce_latency_us = 1e-3;
  simgpu::Device dev(profile, simgpu::ExecMode::kModelOnly);
  dist::ClusterConfig cluster{8, 2};
  cluster.bucket_bytes = 4096;
  cluster.wire_dtype = DType::kF16;

  dist::OverlapScheduler sched(model.params(), dev, cluster);
  ASSERT_GT(sched.plan().size(), 2);
  std::vector<std::pair<int, double>> seen;  // (bucket index, completion time)
  int64_t covered = 0;
  sched.set_bucket_done_callback([&](const dist::GradBucket& b, double done) {
    seen.push_back({b.index, done});
    covered += b.bytes();
  });
  sched.finish();

  EXPECT_EQ(static_cast<int>(seen.size()), sched.plan().size());
  for (size_t i = 0; i + 1 < seen.size(); ++i) {
    EXPECT_LE(seen[i].second, seen[i + 1].second) << "completion order broke at " << i;
  }
  EXPECT_EQ(covered, static_cast<int64_t>(model.params().flat_grad_bytes()));
  // FP16 wire halves the payload of this FP32 model.
  EXPECT_EQ(sched.wire_bytes(),
            static_cast<int64_t>(model.params().flat_grad_bytes()) / 2);
}

TEST(WireDtypeTest, PayloadBytesAndRounding) {
  EXPECT_EQ(dist::wire_payload_bytes(400, DType::kF32, DType::kF32), 400);
  EXPECT_EQ(dist::wire_payload_bytes(400, DType::kF32, DType::kF16), 200);
  EXPECT_EQ(dist::wire_payload_bytes(200, DType::kF16, DType::kF16), 200);
  EXPECT_EQ(dist::wire_payload_bytes(200, DType::kF16, DType::kF32), 400);

  // FP16 wire: every replica converges to the same value, close to (but not
  // necessarily bitwise equal to) the lossless FP32-wire average.
  Tensor a16 = Tensor::from_vector({1.0f, 0.3333333f, -2.5f, 0.0f}, {4}, DType::kF32);
  Tensor b16 = Tensor::from_vector({3.0f, 0.6666666f, 1.5f, 1e-4f}, {4}, DType::kF32);
  Tensor a32 = Tensor::from_vector(a16.to_vector(), {4}, DType::kF32);
  Tensor b32 = Tensor::from_vector(b16.to_vector(), {4}, DType::kF32);
  dist::allreduce_average({a16, b16}, DType::kF16);
  dist::allreduce_average({a32, b32}, DType::kF32);
  EXPECT_EQ(a16.to_vector(), b16.to_vector());
  const auto va = a16.to_vector(), vr = a32.to_vector();
  for (size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i], vr[i], 2e-3f * (1.0f + std::abs(vr[i]))) << i;
  }
}

TEST(WireDtypeTest, Fp16WireReplicasStayIdentical) {
  // Replicas synced over an FP16 wire still agree bitwise with EACH OTHER
  // after sync + identical updates — the data-parallel invariant survives
  // the compressed wire (only the absolute values shift by the rounding).
  layers::ParamRegistry r0 = make_params(DType::kF16, true, 7);
  layers::ParamRegistry r1 = make_params(DType::kF16, true, 7);
  optim::OptimConfig cfg;
  optim::LightSeq2Trainer t0(r0, cfg), t1(r1, cfg);
  Ctx c;
  for (int step = 0; step < 3; ++step) {
    fill_grads(r0, static_cast<uint64_t>(10 + step));
    fill_grads(r1, static_cast<uint64_t>(20 + step));  // different local grads
    dist::sync_gradients({&r0, &r1}, DType::kF16);
    const auto g0 = r0.flat_grads().to_vector();
    const auto g1 = r1.flat_grads().to_vector();
    ASSERT_EQ(g0, g1) << "step " << step;
    t0.step(c.kc);
    t1.step(c.kc);
    EXPECT_EQ(dist::find_divergence({&r0, &r1}), "") << "step " << step;
  }
}

TEST(GradScalerTest, GrowthAndBackoff) {
  optim::GradScalerConfig cfg;
  cfg.init_scale = 1024.0f;
  cfg.growth_interval = 3;
  optim::GradScaler scaler(cfg);
  EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);
  scaler.update(false);
  scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);  // streak not complete yet
  scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 2048.0f);  // grew after 3 clean steps
  scaler.update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);  // backoff on overflow
  EXPECT_EQ(scaler.overflow_steps(), 1);
  scaler.update(false);
  scaler.update(false);
  scaler.update(true);  // overflow resets the clean streak
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);

  // The scale never collapses below min_scale.
  for (int i = 0; i < 64; ++i) scaler.update(true);
  EXPECT_GE(scaler.scale(), cfg.min_scale);
}

TEST(GradScalerTest, LightSeq2TrainerSkipsOverflowedStepAndBacksOff) {
  Ctx c;
  layers::ParamRegistry reg = make_params(DType::kF32, true);
  optim::OptimConfig cfg;
  cfg.dynamic_loss_scale = true;
  cfg.scaler.init_scale = 1.0f;  // grads below are unscaled
  cfg.scaler.min_scale = 0.25f;
  cfg.scaler.growth_interval = 2;
  optim::LightSeq2Trainer trainer(reg, cfg);
  ASSERT_NE(trainer.scaler(), nullptr);

  const auto before = all_values(reg);
  fill_grads(reg, 1);
  reg.grad({0}).data<float>()[0] = std::numeric_limits<float>::infinity();
  trainer.step(c.kc);
  EXPECT_EQ(all_values(reg), before);  // whole step skipped
  EXPECT_FLOAT_EQ(trainer.scaler()->scale(), 0.5f);
  EXPECT_EQ(trainer.scaler()->overflow_steps(), 1);

  // Clean steps update parameters and eventually regrow the scale.
  fill_grads(reg, 2);
  trainer.step(c.kc);
  EXPECT_NE(all_values(reg), before);
  fill_grads(reg, 3);
  trainer.step(c.kc);
  EXPECT_FLOAT_EQ(trainer.scaler()->scale(), 1.0f);
}

TEST(GradScalerTest, RangeGranularSkipOnlyPoisonedBucket) {
  Ctx c;
  layers::ParamRegistry reg = make_params(DType::kF32, true);
  optim::OptimConfig cfg;
  cfg.dynamic_loss_scale = true;
  cfg.scaler.init_scale = 1.0f;
  optim::LightSeq2Trainer trainer(reg, cfg);

  fill_grads(reg, 1);
  // Poison only the FIRST param's gradient; split the flat buffer at the
  // third param so the two ranges are [params 0-2) | [params 2-n).
  reg.grad({0}).data<float>()[0] = std::numeric_limits<float>::quiet_NaN();
  const size_t split = reg.grad_byte_span(2).first;
  const auto before = all_values(reg);

  trainer.begin_step();
  trainer.step_range(c.kc, 0, split);
  trainer.step_range(c.kc, split, reg.flat_grad_bytes());
  trainer.end_step();

  const auto after = all_values(reg);
  // The poisoned front range is untouched; the clean tail range moved.
  const int64_t split_elems = static_cast<int64_t>(split) / 4;
  bool front_same = true, tail_moved = false;
  const auto v0 = reg.value({0}).to_vector();
  for (size_t i = 0; i < v0.size(); ++i) front_same &= v0[i] == before[i];
  const auto last = reg.value({reg.size() - 1}).to_vector();
  (void)split_elems;
  for (size_t i = 0; i < last.size(); ++i) {
    tail_moved |= last[i] != before[before.size() - last.size() + i];
  }
  EXPECT_TRUE(front_same);
  EXPECT_TRUE(tail_moved);
  // The scaler still sees the step as overflowed.
  EXPECT_EQ(trainer.scaler()->overflow_steps(), 1);
}

// End-to-end loss-scale wiring: train_step tells the criterion to multiply
// the trainer's expected scale into the backward seed, and the trainer
// divides it back out — a power-of-two round trip that is exact in FP32, so
// dynamically-scaled training is bitwise identical to unscaled training.
TEST(GradScalerTest, ScaledTrainingBitwiseMatchesUnscaledInF32) {
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;

  data::MtDataset ds(32, 32, 3, 7, 5);
  auto batches = data::make_mt_batches(ds, 48, DType::kF32);

  auto run = [&](bool dynamic) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    auto session = std::make_unique<Session>(sc);
    auto model = std::make_unique<models::Transformer>(cfg, System::kLightSeq2,
                                                       DType::kF32, /*seed=*/3);
    optim::OptimConfig ocfg;
    ocfg.lr = 1e-3f;
    ocfg.dynamic_loss_scale = dynamic;
    ocfg.scaler.init_scale = 1024.0f;
    auto trainer = std::make_unique<optim::LightSeq2Trainer>(model->params(), ocfg);
    for (int step = 0; step < 3; ++step) {
      (void)core::train_step(*session, *model, batches[static_cast<size_t>(step) % 2],
                             *trainer, dist::ClusterConfig{8, 1});
    }
    return std::make_pair(std::move(session), std::move(model));
  };

  auto [ss, ms] = run(true);
  auto [su, mu] = run(false);
  EXPECT_EQ(dist::find_divergence({&ms->params(), &mu->params()}), "");
}

// The acceptance-criterion claim: at paper scale (Transformer-Big on 2x8
// A100, FP16), pipelined per-bucket updates + FP16 wire cut the exposed
// synchronize+update tail by >= 25% vs the PR-1 overlap baseline
// (serial monolithic update, FP32 wire).
TEST(PipelinedTrainStepTest, CutsExposedSyncPlusUpdateAtPaperScale) {
  const auto profile = simgpu::a100();
  const auto cfg = models::TransformerConfig::big(6, 6);

  auto run = [&](bool pipelined, DType wire) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.profile = profile;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    Session session(sc);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 17,
                              session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(System::kLightSeq2, model.params(), ocfg,
                                       session.param_alloc());
    dist::ClusterConfig cluster{8, 2};
    cluster.pipeline_update = pipelined;
    cluster.wire_dtype = wire;
    data::MtDataset ds(cfg.vocab, 64, 10, 40, 5);
    auto batches = data::make_mt_batches(ds, 4096, DType::kF16);
    (void)core::train_step(session, model, batches[0], *trainer, cluster);  // warm-up
    auto [times, res] = core::train_step(session, model, batches[0], *trainer, cluster);
    return times;
  };

  const StepTimes base = run(false, DType::kF32);   // PR-1 schedule
  const StepTimes pipe32 = run(true, DType::kF32);  // pipelined update only
  const StepTimes pipe16 = run(true, DType::kF16);  // + FP16 wire

  // FP16 wire halves the payload and the blocking-equivalent ring time.
  EXPECT_EQ(pipe16.wire_bytes, base.wire_bytes / 2);
  EXPECT_NEAR(pipe16.sync_blocking_us, base.sync_blocking_us / 2,
              base.sync_blocking_us * 0.01);

  // Compute stages are identical; only the tail changes.
  EXPECT_NEAR(pipe16.forward_us, base.forward_us, 1e-6);
  EXPECT_NEAR(pipe16.backward_us, base.backward_us, 1e-6);

  const double base_tail = base.sync_us + base.update_us;
  const double pipe32_tail = pipe32.sync_us + pipe32.update_us;
  const double pipe16_tail = pipe16.sync_us + pipe16.update_us;
  EXPECT_LT(pipe32_tail, base_tail);  // pipelining alone already helps
  EXPECT_LE(pipe16_tail, pipe32_tail + 1e-6);
  EXPECT_LE(pipe16_tail, 0.75 * base_tail)
      << "exposed sync+update dropped only "
      << 100.0 * (1.0 - pipe16_tail / base_tail) << "%";
  EXPECT_GT(pipe16.update_overlapped_us, 0.0);
  EXPECT_LE(pipe16.update_overlapped_us, pipe16.update_us + 1e-9);
}

}  // namespace
}  // namespace ls2
