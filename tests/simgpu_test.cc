#include "simgpu/device.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/check.h"
#include "simgpu/profile.h"

namespace ls2::simgpu {
namespace {

KernelDesc bytes_kernel(int64_t bytes, double eff = 0.8) {
  KernelDesc d;
  d.name = "test.bytes";
  d.bytes_read = bytes / 2;
  d.bytes_written = bytes - bytes / 2;
  d.mem_efficiency = eff;
  return d;
}

TEST(ProfileTest, LookupByName) {
  EXPECT_EQ(profile_by_name("v100").name, "V100");
  EXPECT_EQ(profile_by_name("A100").name, "A100");
  EXPECT_THROW(profile_by_name("h100"), Error);
}

TEST(ProfileTest, A100IsFasterThanV100) {
  const DeviceProfile v = v100(), a = a100();
  EXPECT_GT(a.mem_bw_gb_s, v.mem_bw_gb_s);
  EXPECT_GT(a.fp16_tflops, v.fp16_tflops);
}

TEST(DeviceTest, BandwidthBoundKernelTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  // 900 GB/s * 0.8 eff => 720 bytes/ns. 720 MB should take 1000 us.
  const double t = dev.kernel_time_us(bytes_kernel(720 * 1000 * 1000));
  EXPECT_NEAR(t, 1000.0, 1e-6);
}

TEST(DeviceTest, ComputeBoundKernelTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  KernelDesc d;
  d.name = "test.flops";
  d.flops = 15.7e12 * 0.7 * 1e-3;  // exactly 1 ms at 70% of fp32 peak
  d.compute_efficiency = 0.7;
  EXPECT_NEAR(dev.kernel_time_us(d), 1000.0, 1e-6);
}

TEST(DeviceTest, TensorCoreUsesFp16Peak) {
  Device dev(v100(), ExecMode::kModelOnly);
  KernelDesc d;
  d.name = "test.tc";
  d.flops = 1e12;
  d.compute_efficiency = 0.5;
  d.tensor_core = false;
  const double fp32_t = dev.kernel_time_us(d);
  d.tensor_core = true;
  const double fp16_t = dev.kernel_time_us(d);
  EXPECT_NEAR(fp32_t / fp16_t, 125.0 / 15.7, 1e-6);
}

TEST(DeviceTest, LaunchAdvancesClockAndStats) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  EXPECT_NEAR(dev.clock_us(), 4.5 + 1.0, 1e-9);
  EXPECT_EQ(dev.stats().launches, 1);
  EXPECT_EQ(dev.stats().bytes_moved, 720 * 1000);
}

TEST(DeviceTest, ModelOnlySkipsBody) {
  Device dev(v100(), ExecMode::kModelOnly);
  bool ran = false;
  dev.launch(bytes_kernel(100), [&] { ran = true; });
  EXPECT_FALSE(ran);
  dev.set_mode(ExecMode::kExecute);
  dev.launch(bytes_kernel(100), [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(DeviceTest, RangesAttributeTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  {
    ScopedRange fw(dev, "forward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
    {
      ScopedRange inner(dev, "attn");
      dev.launch(bytes_kernel(720 * 1000), nullptr);
    }
  }
  {
    ScopedRange bw(dev, "backward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
  }
  EXPECT_NEAR(dev.range_time_us("forward"), 5.5, 1e-9);
  EXPECT_NEAR(dev.range_time_us("attn"), 5.5, 1e-9);
  EXPECT_NEAR(dev.range_time_us("backward"), 5.5, 1e-9);
  EXPECT_EQ(dev.range_time_us("update"), 0.0);
}

TEST(DeviceTest, UtilizationCountsOverheadAsIdle) {
  Device dev(v100(), ExecMode::kModelOnly);
  // Launch overhead 4.5us + exec 1.0us => utilization ~ 1/5.5.
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  EXPECT_NEAR(dev.utilization(), 1.0 / 5.5, 1e-9);
}

TEST(DeviceTest, PerKernelStatsAggregate) {
  Device dev(v100(), ExecMode::kModelOnly);
  for (int i = 0; i < 3; ++i) dev.launch(bytes_kernel(720 * 1000), nullptr);
  const auto& pk = dev.per_kernel().at("test.bytes");
  EXPECT_EQ(pk.launches, 3);
  EXPECT_NEAR(pk.time_us, 3 * 5.5, 1e-9);
}

TEST(DeviceTest, ResetClearsEverything) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.launch(bytes_kernel(100), nullptr);
  dev.reset();
  EXPECT_EQ(dev.clock_us(), 0.0);
  EXPECT_EQ(dev.stats().launches, 0);
  EXPECT_TRUE(dev.per_kernel().empty());
}

TEST(TimelineTest, UtilizationSeries) {
  Timeline tl;
  tl.record_busy(0, 50);     // bucket 0: 50% busy
  tl.record_busy(100, 300);  // buckets 1-2: fully busy
  const auto series = tl.utilization_series(100, 300);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 0.5, 1e-9);
  EXPECT_NEAR(series[1], 1.0, 1e-9);
  EXPECT_NEAR(series[2], 1.0, 1e-9);
}

TEST(TimelineTest, MemorySeriesCarriesForward) {
  Timeline tl;
  tl.record_memory(10, 1000);
  tl.record_memory(250, 3000);
  const auto series = tl.memory_series(100, 400);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 1000);
  EXPECT_EQ(series[1], 1000);
  EXPECT_EQ(series[2], 3000);
  EXPECT_EQ(series[3], 3000);
  EXPECT_EQ(tl.peak_memory_bytes(), 3000);
}

TEST(DeviceTest, AdvanceBusyVsIdle) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.advance(10.0, /*busy=*/true, "comm");
  dev.advance(30.0, /*busy=*/false, "wait");
  EXPECT_NEAR(dev.clock_us(), 40.0, 1e-9);
  EXPECT_NEAR(dev.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(dev.range_time_us("comm"), 10.0, 1e-9);
  EXPECT_NEAR(dev.range_time_us("wait"), 30.0, 1e-9);
}

TEST(DeviceTest, OverheadSplitsIntoLaunchGapAndAllocStall) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.launch(bytes_kernel(720 * 1000), nullptr);  // 4.5 gap + 1.0 exec
  dev.charge_alloc(/*cache_hit=*/true);           // 2.0
  dev.charge_alloc(/*cache_hit=*/false);          // 120.0
  dev.charge_free();                              // 60.0
  const auto& s = dev.stats();
  EXPECT_NEAR(s.launch_gap_us, 4.5, 1e-9);
  EXPECT_NEAR(s.alloc_stall_us, 2.0 + 120.0 + 60.0, 1e-9);
  EXPECT_NEAR(s.overhead_us, s.launch_gap_us + s.alloc_stall_us, 1e-9);
}

// --- wait_comm_until edge cases ---

TEST(CommStreamTest, WaitOnAlreadyPassedTimestampIsStrictNoOp) {
  Device dev(v100(), ExecMode::kModelOnly);
  const double done = dev.enqueue_comm(50.0, "sync");
  dev.advance(80.0, /*busy=*/true, "compute");  // compute is past the transfer
  const auto before = dev.stats();
  const double clock_before = dev.clock_us();
  EXPECT_EQ(dev.wait_comm_until(done, "sync"), 0.0);
  // Waiting on a timestamp later than anything enqueued is also a no-op.
  EXPECT_EQ(dev.wait_comm_until(done + 1000.0, "sync"), 0.0);
  EXPECT_EQ(dev.clock_us(), clock_before);
  EXPECT_EQ(dev.stats().exposed_comm_us, before.exposed_comm_us);
  EXPECT_EQ(dev.stats().busy_us, before.busy_us);
  EXPECT_EQ(dev.stats().overhead_us, before.overhead_us);
  EXPECT_EQ(dev.range_time_us("sync"), 0.0);
}

TEST(CommStreamTest, InterleavedWaitsPreserveExposedAccounting) {
  Device dev(v100(), ExecMode::kModelOnly);
  const double d1 = dev.enqueue_comm(30.0, "b0");  // completes at 30
  const double d2 = dev.enqueue_comm(40.0, "b1");  // serialized: completes at 70
  EXPECT_NEAR(d1, 30.0, 1e-9);
  EXPECT_NEAR(d2, 70.0, 1e-9);
  // Wait on the FIRST transfer only: exposes 30 (compute at 0), later
  // transfer keeps running.
  EXPECT_NEAR(dev.wait_comm_until(d1, "sync"), 30.0, 1e-9);
  EXPECT_NEAR(dev.clock_us(), 30.0, 1e-9);
  // Overlap 25 us of compute, then wait on the second: exposes only 15.
  dev.advance(25.0, /*busy=*/true, "update");
  EXPECT_NEAR(dev.wait_comm_until(d2, "sync"), 15.0, 1e-9);
  EXPECT_NEAR(dev.clock_us(), 70.0, 1e-9);
  // Exposed total equals the sum of the individual waits, attributed where
  // they happened; a final full drain has nothing left.
  EXPECT_NEAR(dev.stats().exposed_comm_us, 45.0, 1e-9);
  EXPECT_NEAR(dev.range_time_us("sync"), 45.0, 1e-9);
  EXPECT_NEAR(dev.sync_comm("sync"), 0.0, 1e-9);
  EXPECT_NEAR(dev.stats().comm_us, 70.0, 1e-9);
  EXPECT_EQ(dev.stats().comm_transfers, 2);
}

// --- step-graph capture & replay ---

TEST(StepGraphTest, CaptureRecordsAndReplayDropsLaunchGaps) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  dev.launch(bytes_kernel(720 * 1000), nullptr);      // 1.0 us exec
  dev.launch(bytes_kernel(2 * 720 * 1000), nullptr);  // 2.0 us exec
  StepGraph graph = dev.end_capture();
  ASSERT_TRUE(graph.valid);
  EXPECT_EQ(graph.kernel_launches, 2);
  EXPECT_NEAR(graph.kernel_exec_us, 3.0, 1e-9);
  // Capture charged eagerly: 2 launches x (4.5 + exec).
  EXPECT_NEAR(dev.clock_us(), 2 * 4.5 + 3.0, 1e-9);
  const double gap_before = dev.stats().launch_gap_us;

  const double t0 = dev.clock_us();
  dev.begin_replay(graph);
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  dev.launch(bytes_kernel(2 * 720 * 1000), nullptr);
  dev.end_replay();
  // One graph launch (10 us on V100) + back-to-back exec, no per-kernel gap.
  EXPECT_NEAR(dev.clock_us() - t0, 10.0 + 3.0, 1e-9);
  EXPECT_EQ(dev.stats().launch_gap_us, gap_before);
  EXPECT_EQ(dev.stats().graph_replays, 1);
  EXPECT_EQ(dev.stats().replayed_launches, 2);
  EXPECT_NEAR(dev.stats().graph_launch_us, 10.0, 1e-9);
  EXPECT_EQ(dev.stats().launches, 4);  // kernel executions, eager + replayed
}

TEST(StepGraphTest, ReplayAttributesTimeToLiveRanges) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  {
    ScopedRange r(dev, "forward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
  }
  StepGraph graph = dev.end_capture();
  const double fw_before = dev.range_time_us("forward");
  dev.begin_replay(graph);
  {
    ScopedRange r(dev, "forward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
  }
  dev.end_replay();
  // The replayed kernel's exec time still lands in the active range.
  EXPECT_NEAR(dev.range_time_us("forward") - fw_before, 1.0, 1e-9);
}

TEST(StepGraphTest, ReplayValidatesNodeSequence) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  StepGraph graph = dev.end_capture();

  // Mismatched descriptor.
  dev.begin_replay(graph);
  KernelDesc other = bytes_kernel(720 * 1000);
  other.name = "test.other";
  EXPECT_THROW(dev.launch(other, nullptr), Error);
  dev.abort_graph();

  // More launches than captured.
  dev.begin_replay(graph);
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  EXPECT_THROW(dev.launch(bytes_kernel(720 * 1000), nullptr), Error);
  dev.abort_graph();

  // Fewer launches than captured.
  dev.begin_replay(graph);
  EXPECT_THROW(dev.end_replay(), Error);
  dev.abort_graph();
}

TEST(StepGraphTest, AllocatorStallPoisonsCapture) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  dev.charge_alloc(/*cache_hit=*/true);  // cached hits are not stalls
  dev.launch(bytes_kernel(100), nullptr);
  dev.charge_alloc(/*cache_hit=*/false);  // cudaMalloc: poison
  dev.launch(bytes_kernel(100), nullptr);  // capture keeps charging eagerly
  StepGraph graph = dev.end_capture();
  EXPECT_FALSE(graph.valid);
  EXPECT_NE(graph.poison_reason.find("allocator stall"), std::string::npos);
  EXPECT_THROW(dev.begin_replay(graph), Error);
}

TEST(StepGraphTest, StreamSyncPoisonsCapture) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  dev.enqueue_comm(10.0, "sync");
  dev.sync_comm("sync");
  StepGraph graph = dev.end_capture();
  EXPECT_FALSE(graph.valid);
  EXPECT_NE(graph.poison_reason.find("sync"), std::string::npos);
}

TEST(StepGraphTest, CommStatsConsistentUnderReplay) {
  // The same enqueue/wait schedule, eager vs replayed: comm bookkeeping is
  // identical; only launch gaps differ. Completion times are replay-time
  // parameters — the replayed wait exposes whatever the live clocks imply.
  auto run = [](bool replayed, StepGraph* captured) {
    Device dev(v100(), ExecMode::kModelOnly);
    if (replayed) dev.begin_replay(*captured);
    else dev.begin_capture();
    dev.launch(bytes_kernel(720 * 1000), nullptr);
    const double done = dev.enqueue_comm(20.0, "b0");
    const double exposed = dev.wait_comm_until(done, "sync");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
    if (replayed) dev.end_replay();
    else *captured = dev.end_capture();
    return std::tuple{dev.stats().comm_transfers, dev.stats().comm_us,
                      dev.stats().exposed_comm_us, exposed};
  };
  StepGraph graph;
  const auto [n_eager, us_eager, exp_eager, wait_eager] = run(false, &graph);
  ASSERT_TRUE(graph.valid);
  const auto [n_replay, us_replay, exp_replay, wait_replay] = run(true, &graph);
  EXPECT_EQ(n_eager, n_replay);
  EXPECT_EQ(us_eager, us_replay);
  // The transfer starts at the (then-current) compute clock in both runs,
  // so an immediate wait exposes the full 20 us either way — and the
  // exposed-comm stat matches the returned wait exactly.
  EXPECT_NEAR(wait_eager, 20.0, 1e-9);
  EXPECT_NEAR(wait_replay, 20.0, 1e-9);
  EXPECT_EQ(exp_eager, wait_eager);
  EXPECT_EQ(exp_replay, wait_replay);
}

TEST(StepGraphTest, ResetAbortsGraphPhase) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.begin_capture();
  dev.launch(bytes_kernel(100), nullptr);
  dev.reset();
  EXPECT_FALSE(dev.capturing());
  dev.begin_capture();  // would throw if the phase leaked
  (void)dev.end_capture();
}

}  // namespace
}  // namespace ls2::simgpu
