#include "simgpu/device.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "simgpu/profile.h"

namespace ls2::simgpu {
namespace {

KernelDesc bytes_kernel(int64_t bytes, double eff = 0.8) {
  KernelDesc d;
  d.name = "test.bytes";
  d.bytes_read = bytes / 2;
  d.bytes_written = bytes - bytes / 2;
  d.mem_efficiency = eff;
  return d;
}

TEST(ProfileTest, LookupByName) {
  EXPECT_EQ(profile_by_name("v100").name, "V100");
  EXPECT_EQ(profile_by_name("A100").name, "A100");
  EXPECT_THROW(profile_by_name("h100"), Error);
}

TEST(ProfileTest, A100IsFasterThanV100) {
  const DeviceProfile v = v100(), a = a100();
  EXPECT_GT(a.mem_bw_gb_s, v.mem_bw_gb_s);
  EXPECT_GT(a.fp16_tflops, v.fp16_tflops);
}

TEST(DeviceTest, BandwidthBoundKernelTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  // 900 GB/s * 0.8 eff => 720 bytes/ns. 720 MB should take 1000 us.
  const double t = dev.kernel_time_us(bytes_kernel(720 * 1000 * 1000));
  EXPECT_NEAR(t, 1000.0, 1e-6);
}

TEST(DeviceTest, ComputeBoundKernelTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  KernelDesc d;
  d.name = "test.flops";
  d.flops = 15.7e12 * 0.7 * 1e-3;  // exactly 1 ms at 70% of fp32 peak
  d.compute_efficiency = 0.7;
  EXPECT_NEAR(dev.kernel_time_us(d), 1000.0, 1e-6);
}

TEST(DeviceTest, TensorCoreUsesFp16Peak) {
  Device dev(v100(), ExecMode::kModelOnly);
  KernelDesc d;
  d.name = "test.tc";
  d.flops = 1e12;
  d.compute_efficiency = 0.5;
  d.tensor_core = false;
  const double fp32_t = dev.kernel_time_us(d);
  d.tensor_core = true;
  const double fp16_t = dev.kernel_time_us(d);
  EXPECT_NEAR(fp32_t / fp16_t, 125.0 / 15.7, 1e-6);
}

TEST(DeviceTest, LaunchAdvancesClockAndStats) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  EXPECT_NEAR(dev.clock_us(), 4.5 + 1.0, 1e-9);
  EXPECT_EQ(dev.stats().launches, 1);
  EXPECT_EQ(dev.stats().bytes_moved, 720 * 1000);
}

TEST(DeviceTest, ModelOnlySkipsBody) {
  Device dev(v100(), ExecMode::kModelOnly);
  bool ran = false;
  dev.launch(bytes_kernel(100), [&] { ran = true; });
  EXPECT_FALSE(ran);
  dev.set_mode(ExecMode::kExecute);
  dev.launch(bytes_kernel(100), [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(DeviceTest, RangesAttributeTime) {
  Device dev(v100(), ExecMode::kModelOnly);
  {
    ScopedRange fw(dev, "forward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
    {
      ScopedRange inner(dev, "attn");
      dev.launch(bytes_kernel(720 * 1000), nullptr);
    }
  }
  {
    ScopedRange bw(dev, "backward");
    dev.launch(bytes_kernel(720 * 1000), nullptr);
  }
  EXPECT_NEAR(dev.range_time_us("forward"), 5.5, 1e-9);
  EXPECT_NEAR(dev.range_time_us("attn"), 5.5, 1e-9);
  EXPECT_NEAR(dev.range_time_us("backward"), 5.5, 1e-9);
  EXPECT_EQ(dev.range_time_us("update"), 0.0);
}

TEST(DeviceTest, UtilizationCountsOverheadAsIdle) {
  Device dev(v100(), ExecMode::kModelOnly);
  // Launch overhead 4.5us + exec 1.0us => utilization ~ 1/5.5.
  dev.launch(bytes_kernel(720 * 1000), nullptr);
  EXPECT_NEAR(dev.utilization(), 1.0 / 5.5, 1e-9);
}

TEST(DeviceTest, PerKernelStatsAggregate) {
  Device dev(v100(), ExecMode::kModelOnly);
  for (int i = 0; i < 3; ++i) dev.launch(bytes_kernel(720 * 1000), nullptr);
  const auto& pk = dev.per_kernel().at("test.bytes");
  EXPECT_EQ(pk.launches, 3);
  EXPECT_NEAR(pk.time_us, 3 * 5.5, 1e-9);
}

TEST(DeviceTest, ResetClearsEverything) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.launch(bytes_kernel(100), nullptr);
  dev.reset();
  EXPECT_EQ(dev.clock_us(), 0.0);
  EXPECT_EQ(dev.stats().launches, 0);
  EXPECT_TRUE(dev.per_kernel().empty());
}

TEST(TimelineTest, UtilizationSeries) {
  Timeline tl;
  tl.record_busy(0, 50);     // bucket 0: 50% busy
  tl.record_busy(100, 300);  // buckets 1-2: fully busy
  const auto series = tl.utilization_series(100, 300);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 0.5, 1e-9);
  EXPECT_NEAR(series[1], 1.0, 1e-9);
  EXPECT_NEAR(series[2], 1.0, 1e-9);
}

TEST(TimelineTest, MemorySeriesCarriesForward) {
  Timeline tl;
  tl.record_memory(10, 1000);
  tl.record_memory(250, 3000);
  const auto series = tl.memory_series(100, 400);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 1000);
  EXPECT_EQ(series[1], 1000);
  EXPECT_EQ(series[2], 3000);
  EXPECT_EQ(series[3], 3000);
  EXPECT_EQ(tl.peak_memory_bytes(), 3000);
}

TEST(DeviceTest, AdvanceBusyVsIdle) {
  Device dev(v100(), ExecMode::kModelOnly);
  dev.advance(10.0, /*busy=*/true, "comm");
  dev.advance(30.0, /*busy=*/false, "wait");
  EXPECT_NEAR(dev.clock_us(), 40.0, 1e-9);
  EXPECT_NEAR(dev.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(dev.range_time_us("comm"), 10.0, 1e-9);
  EXPECT_NEAR(dev.range_time_us("wait"), 30.0, 1e-9);
}

}  // namespace
}  // namespace ls2::simgpu
