#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "common/parallel.h"
#include "layers/layer_context.h"

namespace ls2::data {
namespace {

TEST(MtDatasetTest, Deterministic) {
  MtDataset a(64, 100, 3, 20, 5), b(64, 100, 3, 20, 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.source(i), b.source(i));
    EXPECT_EQ(a.target(i), b.target(i));
  }
}

TEST(MtDatasetTest, LengthsWithinBoundsAndVaried) {
  MtDataset ds(64, 500, 4, 32, 9);
  std::set<int64_t> lengths;
  for (int i = 0; i < 500; ++i) {
    const int64_t l = ds.length(i);
    ASSERT_GE(l, 4);
    ASSERT_LE(l, 32);
    lengths.insert(l);
  }
  EXPECT_GT(lengths.size(), 10u) << "length distribution should be varied";
}

TEST(MtDatasetTest, TokensInVocabularyAndTargetIsShift) {
  MtDataset ds(64, 50, 3, 10, 2);
  for (int i = 0; i < 50; ++i) {
    const auto s = ds.source(i);
    const auto t = ds.target(i);
    ASSERT_EQ(s.size(), t.size());
    for (size_t j = 0; j < s.size(); ++j) {
      ASSERT_GE(s[j], kFirstWord);
      ASSERT_LT(s[j], 64);
      EXPECT_EQ(t[j], kFirstWord + ((s[j] - kFirstWord) + 7) % (64 - kFirstWord));
    }
  }
}

TEST(MtBatcherTest, RespectsTokenBudgetAndCountsTokens) {
  MtDataset ds(64, 200, 3, 24, 5);
  auto batches = make_mt_batches(ds, 256, DType::kF32);
  int64_t total_tokens = 0;
  for (const auto& b : batches) {
    const int64_t B = b.src_ids.shape()[0], L = b.src_ids.shape()[1];
    // Padded target block stays within the budget (single-sentence batches
    // may exceed it only if one sentence alone is longer — not possible
    // here since max_len+1 < 256).
    EXPECT_LE(B * L, 256);
    // tgt_out ends each sentence with EOS; tokens counts non-pad targets.
    const auto tout = b.tgt_out.to_vector();
    int64_t nonpad = 0;
    for (float v : tout) {
      if (static_cast<int32_t>(v) != kPad) ++nonpad;
    }
    EXPECT_EQ(nonpad, b.tokens);
    total_tokens += b.tokens;
  }
  EXPECT_GT(total_tokens, 0);
  // Every sentence appears exactly once across batches.
  int64_t rows = 0;
  for (const auto& b : batches) rows += b.src_ids.shape()[0];
  EXPECT_EQ(rows, 200);
}

TEST(MtBatcherTest, TeacherForcingAlignment) {
  MtDataset ds(64, 20, 3, 8, 5);
  auto batches = make_mt_batches(ds, 128, DType::kF32);
  for (const auto& b : batches) {
    const int64_t B = b.src_ids.shape()[0], L = b.tgt_in.shape()[1];
    const auto tin = b.tgt_in.to_vector();
    const auto tout = b.tgt_out.to_vector();
    for (int64_t r = 0; r < B; ++r) {
      EXPECT_EQ(static_cast<int32_t>(tin[static_cast<size_t>(r * L)]), kBos);
      // tgt_in shifted right by one w.r.t. tgt_out.
      for (int64_t j = 0; j + 1 < L; ++j) {
        const int32_t out_j = static_cast<int32_t>(tout[static_cast<size_t>(r * L + j)]);
        const int32_t in_j1 = static_cast<int32_t>(tin[static_cast<size_t>(r * L + j + 1)]);
        if (out_j != kPad && out_j != kEos) EXPECT_EQ(in_j1, out_j);
      }
    }
  }
}

TEST(MtBatcherTest, SeqMultiplePadsLikeDeepSpeed) {
  MtDataset ds(64, 64, 3, 21, 5);
  auto batches = make_mt_batches(ds, 256, DType::kF32, /*seq_multiple=*/16);
  for (const auto& b : batches) {
    EXPECT_EQ(b.src_ids.shape()[1] % 16, 0) << "DeepSpeed-style x16 padding";
  }
  // The padded variant never has SHORTER sequences than the exact one.
  auto exact = make_mt_batches(ds, 256, DType::kF32, 1);
  int64_t padded_elems = 0, exact_elems = 0;
  for (const auto& b : batches) padded_elems += b.tgt_in.numel();
  for (const auto& b : exact) exact_elems += b.tgt_in.numel();
  EXPECT_GT(padded_elems, exact_elems) << "padding must cost extra tokens";
}

TEST(LmDatasetTest, TargetsAreNextTokens) {
  LmDataset ds(32, 2048, 3);
  auto b0 = ds.batch(0, 4, 16);
  auto b0_again = ds.batch(0, 4, 16);
  EXPECT_EQ(b0.ids.to_vector(), b0_again.ids.to_vector());
  const auto ids = b0.ids.to_vector();
  const auto tgt = b0.targets.to_vector();
  // Within a row, target[l] == ids[l+1].
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t l = 0; l + 1 < 16; ++l) {
      EXPECT_EQ(tgt[static_cast<size_t>(r * 16 + l)],
                ids[static_cast<size_t>(r * 16 + l + 1)]);
    }
  }
}

TEST(ClsDatasetTest, LabelsBalancedAndSequencesValid) {
  ClsDataset ds(64, 512, 24, 7);
  int64_t positives = 0, total = 0;
  for (int i = 0; i < 16; ++i) {
    auto b = ds.batch(i, 16, 20);
    const auto labels = b.labels.to_vector();
    for (float l : labels) {
      ASSERT_TRUE(l == 0.0f || l == 1.0f);
      positives += static_cast<int64_t>(l);
      ++total;
    }
    const auto ids = b.ids.to_vector();
    for (int64_t r = 0; r < 16; ++r) {
      EXPECT_EQ(static_cast<int32_t>(ids[static_cast<size_t>(r * 20)]), kBos);
    }
  }
  const double ratio = static_cast<double>(positives) / static_cast<double>(total);
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
}

TEST(ImageDatasetTest, ShapesAndClassSignal) {
  models::VitConfig cfg;
  cfg.image = 64;
  cfg.patch = 16;
  ImageDataset ds(4, 256, 3);
  auto b = ds.batch(0, 8, cfg, DType::kF32);
  EXPECT_EQ(b.patches.shape(), (Shape{8, cfg.patches(), cfg.patch_dim()}));
  EXPECT_EQ(b.labels.numel(), 8);
  for (float l : b.labels.to_vector()) {
    ASSERT_GE(l, 0.0f);
    ASSERT_LT(l, 4.0f);
  }
  // F16 variant produces half tensors for FP16 models.
  auto b16 = ds.batch(0, 2, cfg, DType::kF16);
  EXPECT_EQ(b16.patches.dtype(), DType::kF16);
}

TEST(PadLengthTest, PolicyPadding) {
  EXPECT_EQ(layers::pad_length(layers::policy_for(layers::System::kDeepSpeed), 33), 48);
  EXPECT_EQ(layers::pad_length(layers::policy_for(layers::System::kDeepSpeed), 48), 48);
  EXPECT_EQ(layers::pad_length(layers::policy_for(layers::System::kLightSeq2), 33), 33);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(0, 10000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Chunk variant: disjoint coverage.
  std::vector<std::atomic<int>> hits2(10000);
  parallel_for_chunks(0, 10000, 128, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits2[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits2) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace ls2::data
