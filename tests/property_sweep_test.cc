// Property-style sweeps (TEST_P): the invariants that must hold for EVERY
// shape, dtype, mask configuration and system policy — not just the
// hand-picked cases of the unit suites.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lightseq2.h"
#include "kernels/criterion.h"

namespace ls2 {
namespace {

using layers::System;

// ---------------------------------------------------------------------------
// Encoder layer: policy equivalence over a shape grid.
// ---------------------------------------------------------------------------

using ShapeParam = std::tuple<int, int, int, int>;  // B, L, hidden, heads

class EncoderShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(EncoderShapeSweep, AllPoliciesIdenticalEverywhere) {
  const auto [B, L, hidden, heads] = GetParam();
  layers::TransformerLayerConfig cfg;
  cfg.hidden = hidden;
  cfg.heads = heads;
  cfg.ffn_dim = 2 * hidden;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.1f;

  std::vector<float> ref_y, ref_dx;
  for (System sys : {System::kFairseq, System::kLightSeq2}) {
    simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
    layers::LayerContext ctx(dev, nullptr, layers::policy_for(sys), /*seed=*/77);
    layers::ParamRegistry params;
    layers::TransformerEncoderLayer layer(params, "enc", cfg);
    params.materialize(DType::kF32, sys == System::kLightSeq2, Rng(1));
    params.zero_grads();

    Tensor x = Tensor::empty({B, L, hidden}, DType::kF32);
    Rng(9).fill_normal(x, 1, 0.0f, 0.7f);
    Tensor y = layer.forward(ctx, x, nullptr);
    Tensor dy = Tensor::empty({B, L, hidden}, DType::kF32);
    Rng(9).fill_normal(dy, 2, 0.0f, 0.2f);
    Tensor dx = layer.backward(ctx, dy);

    if (ref_y.empty()) {
      ref_y = y.to_vector();
      ref_dx = dx.to_vector();
    } else {
      EXPECT_EQ(y.to_vector(), ref_y);
      const auto dxv = dx.to_vector();
      ASSERT_EQ(dxv.size(), ref_dx.size());
      for (size_t i = 0; i < dxv.size(); ++i) ASSERT_NEAR(dxv[i], ref_dx[i], 1e-5) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 8, 1),    // degenerate single token
                      std::make_tuple(1, 7, 8, 2),    // odd length
                      std::make_tuple(3, 5, 24, 3),   // non-power-of-two everything
                      std::make_tuple(2, 16, 32, 4),  // friendly shapes
                      std::make_tuple(4, 3, 16, 8))); // heads == wide split

// ---------------------------------------------------------------------------
// FP16 layers track FP32 within half precision on every shape.
// ---------------------------------------------------------------------------

class Fp16Sweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(Fp16Sweep, HalfTracksFloat) {
  const auto [B, L, hidden, heads] = GetParam();
  layers::TransformerLayerConfig cfg;
  cfg.hidden = hidden;
  cfg.heads = heads;
  cfg.ffn_dim = 2 * hidden;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;

  std::vector<float> y32;
  for (DType dt : {DType::kF32, DType::kF16}) {
    simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
    layers::LayerContext ctx(dev, nullptr, layers::policy_for(System::kLightSeq2), 77);
    layers::ParamRegistry params;
    layers::TransformerEncoderLayer layer(params, "enc", cfg);
    params.materialize(dt, true, Rng(1));
    Tensor x = Tensor::empty({B, L, hidden}, dt);
    Rng(9).fill_normal(x, 1, 0.0f, 0.5f);
    Tensor y = layer.forward(ctx, x, nullptr);
    if (dt == DType::kF32) {
      y32 = y.to_vector();
    } else {
      const auto y16 = y.to_vector();
      ASSERT_EQ(y16.size(), y32.size());
      for (size_t i = 0; i < y16.size(); ++i) {
        EXPECT_NEAR(y16[i], y32[i], 0.05f + 0.05f * std::abs(y32[i])) << i;
      }
    }
    layer.release();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fp16Sweep,
                         ::testing::Values(std::make_tuple(2, 6, 16, 2),
                                           std::make_tuple(1, 12, 32, 4),
                                           std::make_tuple(3, 4, 48, 6)));

// ---------------------------------------------------------------------------
// Attention masking: padded keys never influence valid outputs, under any
// (causal, lens) combination and any policy.
// ---------------------------------------------------------------------------

using MaskParam = std::tuple<bool, bool, int>;  // causal, use_lens, system index

class MaskSweep : public ::testing::TestWithParam<MaskParam> {};

TEST_P(MaskSweep, PaddingIsInvisible) {
  const auto [causal, use_lens, sys_idx] = GetParam();
  if (!causal && !use_lens) GTEST_SKIP() << "no mask to test";
  const System sys = sys_idx == 0 ? System::kFairseq : System::kLightSeq2;
  const int64_t B = 2, L = 8, H = 16;

  layers::TransformerLayerConfig cfg;
  cfg.hidden = H;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;
  cfg.causal = causal;

  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  layers::LayerContext ctx(dev, nullptr, layers::policy_for(sys), 77);
  layers::ParamRegistry params;
  layers::TransformerEncoderLayer layer(params, "enc", cfg);
  params.materialize(DType::kF32, sys == System::kLightSeq2, Rng(1));

  const int64_t valid = 5;
  Tensor lens = Tensor::from_vector({static_cast<float>(valid), static_cast<float>(valid)},
                                    {B}, DType::kI32);
  Tensor x1 = Tensor::empty({B, L, H}, DType::kF32);
  Rng(3).fill_normal(x1, 1, 0.0f, 0.5f);
  Tensor x2 = Tensor::from_vector(x1.to_vector(), {B, L, H}, DType::kF32);
  {
    auto v = x2.to_vector();
    for (int64_t b = 0; b < B; ++b)
      for (int64_t i = valid * H; i < L * H; ++i) v[static_cast<size_t>(b * L * H + i)] = 7.0f;
    x2.copy_from(v);
  }
  Tensor y1 = layer.forward(ctx, x1, use_lens ? &lens : nullptr);
  layer.release();
  Tensor y2 = layer.forward(ctx, x2, use_lens ? &lens : nullptr);
  layer.release();
  const auto v1 = y1.to_vector(), v2 = y2.to_vector();
  // With key-length masking (or full causality), outputs at valid positions
  // cannot depend on the garbage suffix.
  if (use_lens || causal) {
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t i = 0; i < valid * H; ++i) {
        ASSERT_FLOAT_EQ(v1[static_cast<size_t>(b * L * H + i)],
                        v2[static_cast<size_t>(b * L * H + i)])
            << "b=" << b << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, MaskSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Arena stress: random LIFO-ish alloc/free traffic never exceeds a capacity
// sized by the measured peak, and always resets cleanly.
// ---------------------------------------------------------------------------

class ArenaStress : public ::testing::TestWithParam<int> {};

TEST_P(ArenaStress, RandomTrafficFitsMeasuredPeak) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  // Generate a plausible step: mixed sizes, mostly LIFO releases.
  struct Op {
    size_t bytes;
    int live_for;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 200; ++i) {
    ops.push_back({static_cast<size_t>(256 + rng.randint(1, static_cast<uint64_t>(i), 1 << 16)),
                   1 + static_cast<int>(rng.randint(2, static_cast<uint64_t>(i), 12))});
  }
  // Probe with the measuring allocator.
  mem::MeasuringAllocator probe;
  auto run = [&](BufferAllocator& alloc) {
    std::vector<std::pair<void*, size_t>> live;  // (ptr, bytes) with deadline
    std::vector<int> deadlines;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      // Release expired allocations (LIFO scan).
      for (int j = static_cast<int>(live.size()) - 1; j >= 0; --j) {
        if (deadlines[static_cast<size_t>(j)] <= i) {
          alloc.deallocate(live[static_cast<size_t>(j)].first,
                           live[static_cast<size_t>(j)].second);
          live.erase(live.begin() + j);
          deadlines.erase(deadlines.begin() + j);
        }
      }
      void* p = alloc.allocate(ops[static_cast<size_t>(i)].bytes);
      live.emplace_back(p, ops[static_cast<size_t>(i)].bytes);
      deadlines.push_back(i + ops[static_cast<size_t>(i)].live_for);
    }
    for (size_t j = 0; j < live.size(); ++j) alloc.deallocate(live[j].first, live[j].second);
  };
  run(probe);

  // First-fit fragmentation can need more than the tight live peak; 2x is a
  // conservative bound this traffic must respect.
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  mem::ArenaAllocator arena(dev, static_cast<size_t>(probe.peak_bytes()) * 2);
  EXPECT_NO_THROW(run(arena));
  EXPECT_EQ(arena.outstanding(), 0);
  EXPECT_NO_THROW(arena.reset());
  EXPECT_GE(static_cast<int64_t>(arena.high_water()), probe.peak_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaStress, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Criterion: gradient sums to ~zero over the vocabulary for every alpha
// (softmax shift-invariance), for valid rows.
// ---------------------------------------------------------------------------

class CriterionAlphaSweep : public ::testing::TestWithParam<float> {};

TEST_P(CriterionAlphaSweep, GradSumsToAlphaIndependentConstant) {
  const float alpha = GetParam();
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 5);
  const int64_t rows = 6, V = 19;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 1, 0.0f, 2.0f);
  Tensor targets = Tensor::empty({rows}, DType::kI32);
  kc.rng.fill_randint(targets, 2, 0, V);
  Tensor loss = Tensor::empty({rows}, DType::kF32);
  Tensor stats = Tensor::empty({rows, 2}, DType::kF32);
  kern::ls_cross_entropy_fw(kc, kern::Impl::kLS2, logits, targets, loss, stats, alpha);
  Tensor d = Tensor::empty({rows, V}, DType::kF32);
  kern::ls_cross_entropy_bw(kc, kern::Impl::kLS2, logits, targets, stats, d, alpha, 1.0f);
  const auto dv = d.to_vector();
  for (int64_t r = 0; r < rows; ++r) {
    double s = 0;
    for (int64_t j = 0; j < V; ++j) s += dv[static_cast<size_t>(r * V + j)];
    // sum(q) - V*(alpha/V) - (1-alpha) = 1 - alpha - 1 + alpha = 0.
    EXPECT_NEAR(s, 0.0, 1e-5) << "row " << r << " alpha " << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CriterionAlphaSweep,
                         ::testing::Values(0.0f, 0.05f, 0.1f, 0.2f, 0.5f));

}  // namespace
}  // namespace ls2
