#include <gtest/gtest.h>

#include <cmath>

#include "core/lightseq2.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

TEST(AllreduceTest, AveragesAcrossReplicas) {
  Tensor a = Tensor::from_vector({1.0f, 2.0f, 3.0f}, {3}, DType::kF32);
  Tensor b = Tensor::from_vector({3.0f, 2.0f, 1.0f}, {3}, DType::kF32);
  Tensor c = Tensor::from_vector({5.0f, 2.0f, -1.0f}, {3}, DType::kF32);
  dist::allreduce_average({a, b, c});
  for (const Tensor& t : {a, b, c}) {
    const auto v = t.to_vector();
    EXPECT_FLOAT_EQ(v[0], 3.0f);
    EXPECT_FLOAT_EQ(v[1], 2.0f);
    EXPECT_FLOAT_EQ(v[2], 1.0f);
  }
}

TEST(AllreduceTest, HalfPrecisionAccumulatesInF32) {
  const int64_t n = 1000;
  Tensor a = Tensor::empty({n}, DType::kF16);
  Tensor b = Tensor::empty({n}, DType::kF16);
  a.fill_(1.0f);
  b.fill_(2.0f);
  dist::allreduce_average({a, b});
  for (float v : a.to_vector()) EXPECT_FLOAT_EQ(v, 1.5f);
  EXPECT_EQ(a.to_vector(), b.to_vector());
}

TEST(AllreduceTest, RingTimeModel) {
  const auto prof = simgpu::a100();
  dist::ClusterConfig one{8, 1}, five{8, 5};
  const int64_t bytes = 600 << 20;  // ~300M fp16 params
  const double t1 = dist::ring_allreduce_us(bytes, one, prof);
  const double t5 = dist::ring_allreduce_us(bytes, five, prof);
  EXPECT_GT(t5, t1);  // inter-node fabric is the bottleneck
  EXPECT_EQ(dist::ring_allreduce_us(bytes, {1, 1}, prof), 0.0);
  EXPECT_GT(dist::ring_allreduce_us(2 * bytes, one, prof), t1);
}

TEST(DataParallelTest, ReplicasStayIdentical) {
  // Two replicas, same init, different batches: after sync + identical
  // updates the parameters must match bitwise (§II-B stage 4).
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;

  data::MtDataset ds(32, 32, 3, 7, 5);
  auto batches = data::make_mt_batches(ds, 48, DType::kF32);
  ASSERT_GE(batches.size(), 2u);

  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::unique_ptr<models::Transformer>> replicas;
  std::vector<std::unique_ptr<optim::Optimizer>> trainers;
  for (int r = 0; r < 2; ++r) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sessions.push_back(std::make_unique<Session>(sc));
    replicas.push_back(std::make_unique<models::Transformer>(cfg, System::kLightSeq2,
                                                             DType::kF32, /*seed=*/3));
    optim::OptimConfig ocfg;
    ocfg.lr = 1e-3f;
    trainers.push_back(
        std::make_unique<optim::LightSeq2Trainer>(replicas[r]->params(), ocfg));
  }
  ASSERT_EQ(dist::find_divergence({&replicas[0]->params(), &replicas[1]->params()}), "");

  for (int step = 0; step < 3; ++step) {
    for (int r = 0; r < 2; ++r) {
      replicas[r]->params().zero_grads();
      replicas[r]->forward(sessions[r]->ctx(), batches[(step * 2 + r) % batches.size()]);
      replicas[r]->backward(sessions[r]->ctx());
      sessions[r]->end_step();
    }
    dist::sync_gradients({&replicas[0]->params(), &replicas[1]->params()});
    for (int r = 0; r < 2; ++r) trainers[r]->step(sessions[r]->ctx().kern);
    EXPECT_EQ(dist::find_divergence({&replicas[0]->params(), &replicas[1]->params()}), "")
        << "step " << step;
  }
}

TEST(SessionTest, ArenaKeepsMemoryFlatBaselineGrows) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 64;

  data::MtDataset ds(64, 48, 4, 20, 6);  // growing lengths across batches
  auto batches = data::make_mt_batches(ds, 96, DType::kF32);
  ASSERT_GE(batches.size(), 3u);

  // Capacity scan (§IV-D): probe the largest batch with a measuring
  // allocator to size the arena.
  int64_t cap = 0;
  {
    mem::MeasuringAllocator probe;
    simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
    layers::LayerContext probe_ctx(dev, &probe, layers::policy_for(System::kLightSeq2), 1);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
    model.params().zero_grads();
    model.forward(probe_ctx, data::largest_batch(batches));
    model.backward(probe_ctx);
    cap = probe.peak_bytes();
  }

  // LightSeq2 with arena: exactly ONE device malloc, flat usage.
  {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.arena_bytes = static_cast<size_t>(cap) + (1 << 20);
    Session s(sc);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
    const int64_t usage_before = s.activations().bytes_in_use();
    for (size_t i = 0; i < 3; ++i) {
      model.params().zero_grads();
      model.forward(s.ctx(), batches[i]);
      model.backward(s.ctx());
      s.end_step();
      EXPECT_EQ(s.activations().bytes_in_use(), usage_before) << "step " << i;
    }
    EXPECT_EQ(s.activations().device_malloc_count(), 1);
  }

  // Fairseq-style caching allocator: usage watermark grows as longer
  // sequences arrive (Fig. 20's staircase), with many device mallocs.
  {
    SessionConfig sc;
    sc.system = System::kFairseq;
    Session s(sc);
    models::Transformer model(cfg, System::kFairseq, DType::kF32, 1);
    std::vector<int64_t> peaks;
    for (size_t i = 0; i < 3; ++i) {
      model.params().zero_grads();
      model.forward(s.ctx(), batches[i]);
      model.backward(s.ctx());
      s.end_step();
      peaks.push_back(s.activations().peak_bytes());
    }
    EXPECT_GT(s.activations().device_malloc_count(), 10);
    EXPECT_GE(peaks[2], peaks[0]);  // watermark only grows
  }
}

TEST(TrainStepTest, StageTimesArePositiveAndOrdered) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  Session s(sc);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::MtDataset ds(64, 8, 3, 8, 5);
  auto batches = data::make_mt_batches(ds, 64, DType::kF32);

  // Warm-up step: the first step pays one-time allocator misses (real
  // caching-allocator behaviour); stage ratios are meaningful from step 2.
  (void)core::train_step(s, model, batches[0], trainer, dist::ClusterConfig{8, 1});
  auto [times, res] = core::train_step(s, model, batches[0], trainer,
                                       dist::ClusterConfig{8, 1});
  EXPECT_GT(times.forward_us, 0);
  EXPECT_GT(times.backward_us, 0);
  EXPECT_GT(times.sync_us, 0);  // 8 simulated GPUs => all-reduce time
  EXPECT_GT(times.update_us, 0);
  EXPECT_NEAR(times.total_us(),
              times.forward_us + times.backward_us + times.sync_us + times.update_us,
              1e-9);
  // Backward does roughly 2x forward's work.
  EXPECT_GT(times.backward_us, times.forward_us);
}

TEST(TrainStepTest, ModelOnlyModeSweepsPaperScaleFast) {
  // 6e6d Transformer-Base at 4096 batch tokens — a real config from Fig. 10
  // — must sweep in model-only mode without executing any math.
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  Session s(sc);
  models::TransformerConfig cfg = models::TransformerConfig::base(6, 6);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 1);
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);

  data::MtDataset ds(cfg.vocab, 64, 10, 40, 5);
  auto batches = data::make_mt_batches(ds, 4096, DType::kF16);
  auto [times, res] = core::train_step(s, model, batches[0], trainer);
  EXPECT_GT(times.total_us(), 1000.0);  // a plausible step is > 1ms
  EXPECT_LT(times.total_us(), 5e6);
  EXPECT_GT(s.device().stats().launches, 100);
}

TEST(TrainStepTest, LossDecreasesUnderBothSystems) {
  // End-to-end convergence parity: same seed, same data => same loss curve
  // (f32) for Fairseq and LightSeq2, and it must decrease.
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.05f;

  data::MtDataset ds(32, 64, 3, 8, 5);
  auto batches = data::make_mt_batches(ds, 96, DType::kF32);

  std::vector<std::vector<float>> curves;
  for (System sys : {System::kFairseq, System::kLightSeq2}) {
    SessionConfig sc;
    sc.system = sys;
    Session s(sc);
    models::Transformer model(cfg, sys, DType::kF32, /*seed=*/3);
    optim::OptimConfig ocfg;
    ocfg.lr = 2e-3f;
    auto trainer = optim::make_trainer(sys, model.params(), ocfg);
    std::vector<float> losses;
    for (int step = 0; step < 20; ++step) {
      auto [times, res] =
          core::train_step(s, model, batches[static_cast<size_t>(step) % batches.size()],
                           *trainer);
      losses.push_back(res.loss_per_token());
    }
    EXPECT_LT(losses.back(), losses.front()) << layers::system_name(sys);
    curves.push_back(std::move(losses));
  }
  // Same trajectory within float tolerance.
  for (size_t i = 0; i < curves[0].size(); ++i) {
    EXPECT_NEAR(curves[0][i], curves[1][i], 0.02f + 0.01f * curves[0][i]) << "step " << i;
  }
}

TEST(TrainStepTest, Fp16TrainingTracksFp32) {
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;

  data::MtDataset ds(32, 32, 3, 8, 5);
  auto batches32 = data::make_mt_batches(ds, 96, DType::kF32);

  auto run = [&](DType dt) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = dt;
    Session s(sc);
    models::Transformer model(cfg, System::kLightSeq2, dt, 3);
    optim::OptimConfig ocfg;
    ocfg.lr = 1e-3f;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    std::vector<float> losses;
    for (int step = 0; step < 10; ++step) {
      auto [times, res] = core::train_step(
          s, model, batches32[static_cast<size_t>(step) % batches32.size()], trainer);
      losses.push_back(res.loss_per_token());
    }
    return losses;
  };
  const auto f32 = run(DType::kF32);
  const auto f16 = run(DType::kF16);
  for (size_t i = 0; i < f32.size(); ++i) {
    EXPECT_NEAR(f16[i], f32[i], 0.05f + 0.03f * f32[i]) << "step " << i;
  }
}

}  // namespace
}  // namespace ls2
