#include "gemm/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gemm/gemm_device.h"
#include "simgpu/profile.h"
#include "tensor/random.h"

namespace ls2::gemm {
namespace {

// Textbook reference for validation.
void ref_gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha, const float* a,
              const float* b, float beta, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

std::vector<float> random_vec(size_t n, uint64_t stream) {
  Rng rng(1234);
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.normal(stream, i);
  return v;
}

class SgemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int, int, int>> {};

TEST_P(SgemmTransposeTest, MatchesReference) {
  const auto [ta, tb, m, n, k] = GetParam();
  const auto a = random_vec(static_cast<size_t>(m * k), 1);
  const auto b = random_vec(static_cast<size_t>(k * n), 2);
  std::vector<float> c = random_vec(static_cast<size_t>(m * n), 3);
  std::vector<float> expect = c;
  sgemm(ta, tb, m, n, k, 0.5f, a.data(), b.data(), 0.25f, c.data());
  ref_gemm(ta, tb, m, n, k, 0.5f, a.data(), b.data(), 0.25f, expect.data());
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-3f) << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, SgemmTransposeTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 7, 64), ::testing::Values(1, 5, 96),
                       ::testing::Values(1, 13, 130)));

TEST(SgemmTest, BetaZeroIgnoresGarbageInC) {
  const int64_t m = 8, n = 8, k = 8;
  const auto a = random_vec(64, 1);
  const auto b = random_vec(64, 2);
  std::vector<float> c(64, std::nanf(""));
  sgemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(SgemmTest, StridedBatchedMatchesLoop) {
  const int64_t m = 6, n = 5, k = 4, batch = 3;
  const auto a = random_vec(static_cast<size_t>(batch * m * k), 1);
  const auto b = random_vec(static_cast<size_t>(batch * k * n), 2);
  std::vector<float> c(static_cast<size_t>(batch * m * n), 0.0f);
  std::vector<float> expect = c;
  sgemm_strided_batched(false, false, m, n, k, 1.0f, a.data(), m * k, b.data(), k * n, 0.0f,
                        c.data(), m * n, batch);
  for (int64_t i = 0; i < batch; ++i)
    ref_gemm(false, false, m, n, k, 1.0f, a.data() + i * m * k, b.data() + i * k * n, 0.0f,
             expect.data() + i * m * n);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-4f);
}

TEST(HgemmTest, MatchesFloatWithinHalfPrecision) {
  const int64_t m = 16, n = 12, k = 20;
  const auto af = random_vec(static_cast<size_t>(m * k), 1);
  const auto bf = random_vec(static_cast<size_t>(k * n), 2);
  std::vector<Half> a(af.size()), b(bf.size()), c(static_cast<size_t>(m * n));
  convert_float_to_half(af.data(), a.data(), static_cast<int64_t>(af.size()));
  convert_float_to_half(bf.data(), b.data(), static_cast<int64_t>(bf.size()));
  hgemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  std::vector<float> expect(static_cast<size_t>(m * n), 0.0f);
  ref_gemm(false, false, m, n, k, 1.0f, af.data(), bf.data(), 0.0f, expect.data());
  for (size_t i = 0; i < c.size(); ++i) {
    // Inputs are rounded to fp16 and the result is stored to fp16: allow a
    // few fp16 ulps of k-fold accumulation error.
    EXPECT_NEAR(static_cast<float>(c[i]), expect[i], 0.05f) << i;
  }
}

TEST(UtilizationTest, MonotoneAndClamped) {
  EXPECT_LT(gemm_utilization(8, 8, 8), gemm_utilization(512, 512, 512));
  EXPECT_GE(gemm_utilization(1, 1, 1), 0.05);
  EXPECT_LE(gemm_utilization(8192, 8192, 8192), 0.95);
  // Batching restores occupancy for small matrices (attention GEMMs).
  EXPECT_GT(gemm_utilization(32, 64, 64, 128), gemm_utilization(32, 64, 64, 1));
}

TEST(DeviceGemmTest, ChargesCostModelAndComputes) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  const int64_t m = 32, n = 16, k = 8;
  Tensor a = Tensor::from_vector(random_vec(static_cast<size_t>(m * k), 1), Shape{m, k},
                                 DType::kF32);
  Tensor b = Tensor::from_vector(random_vec(static_cast<size_t>(k * n), 2), Shape{k, n},
                                 DType::kF32);
  Tensor c = Tensor::zeros(Shape{m, n}, DType::kF32);
  device_gemm(dev, false, false, m, n, k, 1.0f, a, b, 0.0f, c);
  EXPECT_EQ(dev.stats().launches, 1);
  EXPECT_GT(dev.clock_us(), 0.0);
  std::vector<float> expect(static_cast<size_t>(m * n), 0.0f);
  const auto av = a.to_vector(), bv = b.to_vector();
  ref_gemm(false, false, m, n, k, 1.0f, av.data(), bv.data(), 0.0f, expect.data());
  const auto cv = c.to_vector();
  for (size_t i = 0; i < cv.size(); ++i) EXPECT_NEAR(cv[i], expect[i], 1e-4f);
}

TEST(DeviceGemmTest, Fp16UsesTensorCoreRate) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  const int64_t m = 1024, n = 1024, k = 1024;
  Tensor a16 = Tensor::zeros(Shape{m, k}, DType::kF16);
  Tensor b16 = Tensor::zeros(Shape{k, n}, DType::kF16);
  Tensor c16 = Tensor::zeros(Shape{m, n}, DType::kF16);
  device_gemm(dev, false, false, m, n, k, 1.0f, a16, b16, 0.0f, c16);
  const double t16 = dev.clock_us();
  dev.reset();
  Tensor a32 = Tensor::zeros(Shape{m, k}, DType::kF32);
  Tensor b32 = Tensor::zeros(Shape{k, n}, DType::kF32);
  Tensor c32 = Tensor::zeros(Shape{m, n}, DType::kF32);
  device_gemm(dev, false, false, m, n, k, 1.0f, a32, b32, 0.0f, c32);
  const double t32 = dev.clock_us();
  EXPECT_GT(t32, t16 * 3);  // tensor cores are ~8x peak; model must show a big gap
}

TEST(DeviceGemmTest, MixedDtypeRejected) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  Tensor a = Tensor::zeros(Shape{2, 2}, DType::kF32);
  Tensor b = Tensor::zeros(Shape{2, 2}, DType::kF16);
  Tensor c = Tensor::zeros(Shape{2, 2}, DType::kF32);
  EXPECT_THROW(device_gemm(dev, false, false, 2, 2, 2, 1.0f, a, b, 0.0f, c), Error);
}

}  // namespace
}  // namespace ls2::gemm
