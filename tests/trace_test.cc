// Chrome trace export tests (DESIGN.md §12 satellite): the merged trace
// written by simgpu::Timeline::write_chrome_trace (and Fleet's multi-process
// merge) must be machine-consumable — required fields on every event,
// balanced and properly nested B/E duration pairs per (pid, tid) lane,
// non-negative monotone timestamps — and must actually carry the telemetry
// spans the instrumentation layer records (step/stage envelopes, per-bucket
// allreduce lanes, serve.prefill/serve.decode).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/lightseq2.h"
#include "infer/fleet.h"
#include "simgpu/timeline.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

/// One parsed trace event (only the fields the tests assert on).
struct Event {
  std::string ph;
  std::string name;
  int pid = 0;
  int tid = 0;
  double ts = 0;
  bool has_ts = false;
};

/// Parse the writer's one-event-per-line JSON without a JSON library: each
/// line between the traceEvents brackets is one object.
std::vector<Event> parse_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing trace file " << path;
  std::vector<Event> events;
  std::string line;
  auto str_field = [](const std::string& s, const std::string& key) -> std::string {
    const std::string pat = "\"" + key + "\":\"";
    const size_t at = s.find(pat);
    if (at == std::string::npos) return "";
    const size_t begin = at + pat.size();
    return s.substr(begin, s.find('"', begin) - begin);
  };
  auto num_field = [](const std::string& s, const std::string& key, bool* found) {
    const std::string pat = "\"" + key + "\":";
    const size_t at = s.find(pat);
    if (found) *found = at != std::string::npos;
    if (at == std::string::npos) return 0.0;
    return std::stod(s.substr(at + pat.size()));
  };
  while (std::getline(in, line)) {
    if (line.find("{\"ph\"") == std::string::npos) continue;
    Event e;
    e.ph = str_field(line, "ph");
    e.name = str_field(line, "name");
    e.pid = static_cast<int>(num_field(line, "pid", nullptr));
    e.tid = static_cast<int>(num_field(line, "tid", nullptr));
    e.ts = num_field(line, "ts", &e.has_ts);
    EXPECT_FALSE(e.ph.empty()) << "event without ph: " << line;
    EXPECT_FALSE(e.name.empty()) << "event without name: " << line;
    events.push_back(std::move(e));
  }
  EXPECT_FALSE(events.empty()) << path << " parsed to zero events";
  return events;
}

/// Every non-metadata event must carry a timestamp; B/E events must balance
/// per (pid, tid) lane with LIFO (properly nested) name matching, and each
/// lane's event sequence must be time-ordered.
void check_well_formed(const std::vector<Event>& events) {
  std::map<std::pair<int, int>, std::vector<const Event*>> lanes;
  for (const Event& e : events) {
    if (e.ph == "M") continue;  // metadata has no ts
    EXPECT_TRUE(e.has_ts) << e.ph << " " << e.name << " lacks ts";
    EXPECT_GE(e.ts, 0.0) << e.name;
    if (e.ph == "B" || e.ph == "E") lanes[{e.pid, e.tid}].push_back(&e);
  }
  for (const auto& [lane, seq] : lanes) {
    std::vector<const Event*> stack;
    double prev_ts = 0;
    for (const Event* e : seq) {
      EXPECT_GE(e->ts, prev_ts) << "lane (" << lane.first << "," << lane.second
                                << "): B/E timestamps must be monotone";
      prev_ts = e->ts;
      if (e->ph == "B") {
        stack.push_back(e);
      } else {
        ASSERT_FALSE(stack.empty())
            << "E \"" << e->name << "\" at ts=" << e->ts << " with empty stack";
        EXPECT_EQ(stack.back()->name, e->name)
            << "E must close the innermost open B (proper nesting)";
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "lane (" << lane.first << "," << lane.second
                               << ") ended with " << stack.size() << " unclosed B events";
  }
}

bool has_span(const std::vector<Event>& events, const std::string& name) {
  for (const Event& e : events)
    if (e.ph == "B" && e.name == name) return true;
  return false;
}

TEST(TraceTest, NestedAndAdjacentSpansEmitBalancedPairs) {
  simgpu::Timeline tl;
  // step ⊃ {forward, backward ⊃ bucket}; adjacent forward/backward share a
  // timestamp, where the E must sort before the next B.
  tl.record_span(0, 0, "step", 0.0, 100.0);
  tl.record_span(0, 0, "forward", 0.0, 40.0);
  tl.record_span(0, 0, "backward", 40.0, 100.0);
  tl.record_span(0, 0, "bucket", 60.0, 80.0);
  tl.record_span(0, 1, "allreduce.b0", 50.0, 90.0);  // comm lane, independent
  tl.record_instant(0, 0, "fault", 70.0);
  tl.record_memory(10.0, 1 << 20);

  const std::string path = "trace_test_nested.json";
  tl.write_chrome_trace(path);
  const auto events = parse_trace(path);
  check_well_formed(events);

  int begins = 0, ends = 0, instants = 0, counters = 0;
  for (const Event& e : events) {
    begins += e.ph == "B";
    ends += e.ph == "E";
    instants += e.ph == "i";
    counters += e.ph == "C";
  }
  EXPECT_EQ(begins, 5);
  EXPECT_EQ(ends, 5);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_TRUE(has_span(events, "allreduce.b0"));
  std::remove(path.c_str());
}

TEST(TraceTest, TrainStepRecordsStepStageAndBucketSpans) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.record_timeline = true;
  Session s(sc);
  models::TransformerConfig cfg = models::TransformerConfig::base(2, 2);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 1);
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::MtDataset ds(cfg.vocab, 64, 10, 40, 5);
  auto batches = data::make_mt_batches(ds, 2048, DType::kF16);
  dist::ClusterConfig cluster{4, 1};
  cluster.overlap = true;
  (void)core::train_step(s, model, batches[0], trainer, cluster);

  const std::string path = "trace_test_train.json";
  s.device().timeline().write_chrome_trace(path);
  const auto events = parse_trace(path);
  check_well_formed(events);

  // The telemetry layer's span tree: whole-step envelope, the stage spans,
  // and at least one per-bucket allreduce span on the comm lane (tid 1).
  for (const char* name : {"step", "forward", "backward", "update"})
    EXPECT_TRUE(has_span(events, name)) << "missing span \"" << name << "\"";
  bool comm_span = false;
  for (const Event& e : events)
    comm_span |= e.ph == "B" && e.tid == 1 && e.name.rfind("allreduce.b", 0) == 0;
  EXPECT_TRUE(comm_span) << "bucketed allreduce spans must land on the comm lane";
  std::remove(path.c_str());
}

TEST(TraceTest, FleetTraceMergesReplicasWellFormed) {
  models::Gpt2Config mcfg;
  mcfg.vocab = 64;
  mcfg.hidden = 16;
  mcfg.heads = 2;
  mcfg.ffn_dim = 32;
  mcfg.layers = 2;
  mcfg.max_len = 64;
  infer::FleetConfig fc;
  fc.replicas = 2;
  fc.model = mcfg;
  fc.slots = 2;
  fc.max_len = 32;
  fc.session.mode = simgpu::ExecMode::kModelOnly;
  fc.session.dtype = DType::kF16;
  fc.record_timeline = true;
  infer::Fleet fleet(fc);
  const auto reqs = infer::poisson_requests(8, /*rate=*/20000.0, 2, 6, 3, 8,
                                            mcfg.vocab, 29);
  const infer::FleetReport report = fleet.run(reqs);
  EXPECT_EQ(report.lost, 0);

  const std::string path = "trace_test_fleet.json";
  fleet.write_chrome_trace(path);
  const auto events = parse_trace(path);
  check_well_formed(events);

  // One named trace process per replica; engine spans present per process.
  std::vector<int> replica_pids;
  for (const Event& e : events)
    if (e.ph == "M" && e.name == "process_name") replica_pids.push_back(e.pid);
  EXPECT_EQ(replica_pids.size(), 2u);
  EXPECT_TRUE(has_span(events, "serve.prefill"));
  EXPECT_TRUE(has_span(events, "serve.decode"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ls2
