// Telemetry subsystem tests (DESIGN.md §12): streaming histogram quantiles
// vs the exact sort-based percentile, registry snapshots (JSON/Prometheus),
// roofline coverage of DeviceStats::busy_us, rolling SLO monitors,
// structured logging, and the metrics-snapshot golden contract (a seeded
// serving workload run twice produces byte-identical registry JSON).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/lightseq2.h"
#include "obs/metrics.h"
#include "obs/roofline.h"
#include "obs/slo.h"

namespace ls2::obs {
namespace {

// ---------------------------------------------------------------------------
// exact_percentile + streaming histogram
// ---------------------------------------------------------------------------

TEST(MetricsTest, ExactPercentileSortsAndInterpolates) {
  EXPECT_EQ(exact_percentile({}, 0.5), 0.0);
  EXPECT_EQ(exact_percentile({7.0}, 0.99), 7.0);
  std::vector<double> v = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.5), 25.0);  // rank 1.5 of sorted
  EXPECT_NEAR(exact_percentile(v, 0.25), 17.5, 1e-12);
}

TEST(MetricsTest, HistogramQuantilesTrackExactWithinGrowthBound) {
  Histogram h;  // growth 1.02
  std::vector<double> samples;
  // Deterministic multiplicative stream spanning ~4 decades.
  double x = 3.0;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(x);
    h.record(x);
    x *= 1.0019;
    if (x > 5e4) x = 3.7;
  }
  ASSERT_EQ(h.count(), static_cast<int64_t>(samples.size()));
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = exact_percentile(samples, q);
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.02)
        << "q=" << q << ": estimate outside the growth-factor error bound";
  }
  // The clamp makes the extremes exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), exact_percentile(samples, 0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), exact_percentile(samples, 1.0));
}

TEST(MetricsTest, HistogramUnderflowOverflowAndMerge) {
  HistogramConfig cfg;
  cfg.lo = 10.0;
  cfg.hi = 1000.0;
  cfg.growth = 1.5;
  Histogram a(cfg), b(cfg), all(cfg);
  for (double v : {0.5, 2.0, 50.0}) {
    a.record(v);
    all.record(v);
  }
  for (double v : {600.0, 5000.0, 9000.0}) {
    b.record(v);
    all.record(v);
  }
  EXPECT_EQ(a.buckets().front(), 2) << "values below lo land in the underflow bucket";
  EXPECT_EQ(b.buckets().back(), 2) << "values above hi land in the overflow bucket";
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 9000.0);
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0})
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "merge must equal single-stream";
  a.reset();
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.quantile(0.5), 0.0);
}

TEST(MetricsTest, HistogramQuantileOrderingIsMonotone) {
  Histogram h;
  for (int i = 1; i <= 300; ++i) h.record(static_cast<double>(i * i));
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.min(), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.max());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, RegistryStableReferencesAndSnapshots) {
  MetricsRegistry reg;
  int64_t& c = reg.counter("serve.served_total");
  c += 3;
  reg.counter("serve.served_total") += 2;
  EXPECT_EQ(c, 5) << "counter reference must stay stable across lookups";
  reg.gauge("fleet.live_replicas") = 4.0;
  reg.histogram("serve.latency_us").record(120.0);
  reg.histogram("serve.latency_us").record(480.0);
  reg.set_label("replica", "2");

  EXPECT_TRUE(reg.has_counter("serve.served_total"));
  EXPECT_FALSE(reg.has_counter("nope"));
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"serve.served_total\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fleet.live_replicas\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"replica\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("ls2_serve_served_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("ls2_fleet_live_replicas"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("replica=\"2\""), std::string::npos);

  reg.clear();
  EXPECT_FALSE(reg.has_counter("serve.served_total"));
}

// ---------------------------------------------------------------------------
// Roofline profiler
// ---------------------------------------------------------------------------

/// Drive a device with a known kernel mix plus comm and non-kernel busy
/// time, so every partition term of busy_us is exercised.
void drive_device(simgpu::Device& dev) {
  simgpu::KernelDesc copy;  // memory-bound: no flops
  copy.name = "ls2.copy";
  copy.bytes_read = 8 << 20;
  copy.bytes_written = 8 << 20;
  simgpu::KernelDesc gemm;  // compute-bound tensor-core GEMM
  gemm.name = "ls2.gemm";
  gemm.bytes_read = 1 << 16;
  gemm.bytes_written = 1 << 16;
  gemm.flops = 4e12 * 1e-3;  // big enough to dominate its byte time
  gemm.tensor_core = true;
  for (int i = 0; i < 4; ++i) {
    dev.launch(copy, {});
    dev.launch(gemm, {});
  }
  const double done = dev.enqueue_comm(500.0, "allreduce");
  (void)done;
  dev.sync_comm("sync");                  // exposed comm (nothing overlaps it)
  dev.advance(123.0, /*busy=*/true, "other");  // busy advance outside kernels
}

TEST(RooflineTest, CoveragePartitionsBusyTimeExactly) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  drive_device(dev);

  MetricsRegistry reg;
  collect_device_metrics(reg, dev, "device");
  EXPECT_TRUE(reg.has_gauge("device.busy_us"));
  EXPECT_TRUE(reg.has_counter("device.kernel.ls2.gemm.launches"));

  const RooflineReport report = build_roofline(reg, dev.profile(), "device");
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_GT(report.busy_us, 0);
  EXPECT_NEAR(report.covered_us(), report.busy_us, report.busy_us * 1e-9)
      << "kernel + exposed comm + other must partition busy_us with no gap";
  EXPECT_GT(report.exposed_comm_us, 0);
  EXPECT_NEAR(report.other_busy_us, 123.0, 1e-6);

  // Sorted by exec time descending, utilization in (0, 1], bound classes.
  EXPECT_GE(report.entries[0].exec_us, report.entries[1].exec_us);
  for (const RooflineEntry& e : report.entries) {
    EXPECT_GT(e.utilization, 0.0) << e.family;
    EXPECT_LE(e.utilization, 1.0) << e.family;
    EXPECT_GT(e.share, 0.0);
    if (e.family == "ls2.copy") {
      EXPECT_FALSE(e.compute_bound);
      EXPECT_FALSE(e.tensor_core);
      EXPECT_NEAR(e.utilization, 0.80, 1e-9) << "mem_efficiency is the achieved fraction";
    } else {
      EXPECT_EQ(e.family, "ls2.gemm");
      EXPECT_TRUE(e.compute_bound);
      EXPECT_TRUE(e.tensor_core);
      EXPECT_NEAR(e.utilization, 0.70, 1e-9);
    }
  }

  const std::string table = format_roofline(report, 10);
  EXPECT_NE(table.find("ls2.gemm"), std::string::npos) << table;
  EXPECT_NE(table.find("ls2.copy"), std::string::npos);
  EXPECT_NE(table.find("exposed comm"), std::string::npos);
  EXPECT_NE(table.find("device busy"), std::string::npos);
}

TEST(RooflineTest, ReplayedLaunchesKeepTheCoverageIdentity) {
  // Under graph replay kernels charge exec time with no launch gaps; the
  // exec_us partition must hold exactly there too.
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  simgpu::KernelDesc k;
  k.name = "ls2.step";
  k.bytes_read = 1 << 20;
  k.bytes_written = 1 << 20;
  dev.begin_capture();
  dev.launch(k, {});
  const simgpu::StepGraph graph = dev.end_capture();
  ASSERT_TRUE(graph.valid) << graph.poison_reason;
  for (int i = 0; i < 5; ++i) {
    dev.begin_replay(graph);
    dev.launch(k, {});
    dev.end_replay();
  }
  const RooflineReport report = build_roofline(dev);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].launches, 6);
  EXPECT_NEAR(report.covered_us(), report.busy_us, 1e-9);
  EXPECT_NEAR(report.entries[0].exec_us, report.busy_us, 1e-9)
      << "pure-kernel run: family exec time IS the busy time";
}

// ---------------------------------------------------------------------------
// SLO monitor
// ---------------------------------------------------------------------------

TEST(SloTest, RollingWindowGaugesAndAging) {
  MetricsRegistry reg;
  SloConfig cfg;
  cfg.window_us = 800.0;
  cfg.slices = 4;
  SloMonitor mon(&reg, "serve", cfg);

  for (int i = 0; i < 10; ++i)
    mon.on_served(/*now=*/i * 50.0, /*latency=*/100.0 + 10.0 * i, /*tokens=*/2);
  mon.on_shed(500.0);
  mon.refresh(500.0);

  EXPECT_EQ(mon.window_served(), 10);
  EXPECT_EQ(mon.window_shed(), 1);
  EXPECT_GT(mon.p50_us(), 0);
  EXPECT_GE(mon.p99_us(), mon.p50_us());
  EXPECT_NEAR(mon.availability(), 10.0 / 11.0, 1e-12);
  EXPECT_NEAR(mon.shed_rate(), 1.0 - mon.availability(), 1e-12);
  EXPECT_GT(mon.tokens_per_s(), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("serve.slo.p50_us"), mon.p50_us());
  EXPECT_DOUBLE_EQ(reg.gauge("serve.slo.availability"), mon.availability());
  EXPECT_EQ(reg.counter("serve.served_total"), 10);
  EXPECT_EQ(reg.counter("serve.shed_total"), 1);
  EXPECT_EQ(reg.counter("serve.tokens_total"), 20);

  // Far future: every slice has aged out; lifetime counters persist.
  mon.refresh(100000.0);
  EXPECT_EQ(mon.window_served(), 0);
  EXPECT_EQ(mon.window_shed(), 0);
  EXPECT_DOUBLE_EQ(mon.availability(), 1.0) << "empty window defaults to available";
  EXPECT_EQ(reg.counter("serve.served_total"), 10);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

std::vector<std::string>& captured_lines() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_sink(LogLevel, const std::string& line) { captured_lines().push_back(line); }

TEST(LoggingTest, StructuredFieldsAndThreadIdentity) {
  captured_lines().clear();
  set_log_sink(&capture_sink);
  const LogLevel old = log_level();
  set_log_level(LogLevel::kDebug);
  set_log_identity("replica2");
  LS2_LOG(kInfo) << "hedge fired" << log_kv("req", 17).kv("to_replica", 1);
  set_log_identity("");
  LS2_LOG(kWarn) << "plain message";
  set_log_level(old);
  set_log_sink(nullptr);

  ASSERT_EQ(captured_lines().size(), 2u);
  EXPECT_EQ(captured_lines()[0], "[LS2:I] [replica2] hedge fired req=17 to_replica=1");
  EXPECT_EQ(captured_lines()[1], "[LS2:W] plain message");
}

// ---------------------------------------------------------------------------
// Metrics-snapshot golden test: a seeded serving workload produces a
// byte-identical registry snapshot on every run.
// ---------------------------------------------------------------------------

std::string serve_snapshot() {
  using namespace ls2::infer;
  models::Gpt2Config cfg;
  cfg.vocab = 48;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 32;
  const int64_t slots = 2, max_len = 24;

  MetricsRegistry reg;
  core::SessionConfig sc;
  sc.system = layers::System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.arena_bytes = serve_capacity_scan(cfg, DType::kF32, slots, max_len, 8);
  sc.metrics = &reg;
  core::Session s(sc);
  models::Gpt2 model(cfg, layers::System::kLightSeq2, DType::kF32, 17, s.param_alloc());
  KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  ContinuousBatcher engine(s, model, cache, {});
  const auto reqs =
      poisson_requests(8, /*rate=*/5000.0, /*prompt*/ 2, 6, /*gen*/ 3, 10, cfg.vocab, 71);
  const ServeReport report = engine.serve(reqs);
  EXPECT_EQ(report.served, 8);

  // Fold the device view in too — the full observable surface must be
  // deterministic, not just the serving counters.
  collect_device_metrics(reg, s.device(), "device");
  return reg.to_json();
}

TEST(GoldenTest, SeededServeWorkloadSnapshotsAreByteIdentical) {
  const std::string a = serve_snapshot();
  const std::string b = serve_snapshot();
  EXPECT_GT(a.size(), 100u);
  EXPECT_EQ(a, b) << "metrics snapshot must be deterministic run-to-run";
  EXPECT_NE(a.find("\"serve.served_total\":8"), std::string::npos) << a;
  EXPECT_NE(a.find("serve.slo.p50_us"), std::string::npos);
  EXPECT_NE(a.find("serve.latency_us"), std::string::npos);
  EXPECT_NE(a.find("device.busy_us"), std::string::npos);
}

}  // namespace
}  // namespace ls2::obs
