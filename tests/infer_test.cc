// Serving subsystem tests: KV-cache bookkeeping, bitwise parity of cached
// incremental decoding against the full re-forward (GPT-2 and the
// encoder-decoder Transformer, padded batches included), checkpoint
// round-trips into a fresh inference session, and the continuous-batching
// engine (graph-replayed decode, continuous >= 1.5x static throughput).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "core/lightseq2.h"
#include "kernels/sampling.h"
#include "kernels/transform.h"

namespace ls2::infer {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

models::Gpt2Config tiny_gpt2(float dropout = 0.1f) {
  models::Gpt2Config cfg;
  cfg.vocab = 48;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 32;
  cfg.dropout = dropout;
  return cfg;
}

SessionConfig ls2_session(DType dtype = DType::kF32) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = dtype;
  return sc;
}

/// Random non-pad token ids [B, L] on the heap.
Tensor random_ids(int64_t B, int64_t L, int64_t vocab, uint64_t seed) {
  Tensor t = Tensor::empty({B, L}, DType::kI32);
  Rng rng(seed);
  rng.fill_randint(t, 77, 3, vocab);
  return t;
}

/// Column t of ids [B, L] as a [B, 1] tensor.
Tensor column(const Tensor& ids, int64_t t) {
  const int64_t B = ids.shape()[0], L = ids.shape()[1];
  Tensor c = Tensor::empty({B, 1}, DType::kI32);
  const int32_t* ip = ids.data<int32_t>();
  int32_t* cp = c.data<int32_t>();
  for (int64_t b = 0; b < B; ++b) cp[b] = ip[b * L + t];
  return c;
}

// ---------------------------------------------------------------------------
// KV cache bookkeeping
// ---------------------------------------------------------------------------

TEST(KvCacheTest, SequenceLifecycleAndDecodeViews) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 1);
  KvCacheConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_dim = 4;
  cfg.slots = 3;
  cfg.seq_tokens = 8;
  cfg.page_tokens = 4;
  KvCache cache(cfg);
  EXPECT_EQ(cache.free_lanes(), 3);
  EXPECT_EQ(cache.free_pages(), 3 * 2);
  const SequenceHandle a = cache.allocate(5);
  const SequenceHandle b = cache.allocate(2);
  const SequenceHandle c = cache.allocate(1);
  ASSERT_TRUE(a.valid() && b.valid() && c.valid());
  EXPECT_FALSE(cache.allocate(1).valid()) << "cache full";
  EXPECT_EQ(cache.len(a), 5);
  EXPECT_EQ(cache.capacity(a), 8) << "5 tokens back 2 pages of 4";
  cache.free(c);
  EXPECT_EQ(cache.free_lanes(), 1);

  ASSERT_TRUE(cache.extend(a, kc, kern::Impl::kLS2));
  ASSERT_TRUE(cache.extend(b, kc, kern::Impl::kLS2));
  cache.begin_decode();
  const int32_t* pos = cache.positions().data<int32_t>();
  const int32_t* att = cache.attend_lens().data<int32_t>();
  EXPECT_EQ(pos[cache.lane(a)], 5);
  EXPECT_EQ(att[cache.lane(a)], 6);
  EXPECT_EQ(pos[cache.lane(b)], 2);
  EXPECT_EQ(att[cache.lane(b)], 3);
  // The freed lane attends nothing and its block-table row points at trash.
  const int32_t* bt = cache.block_table().data<int32_t>();
  const int64_t free_lane = 2;  // c's lane (lanes are claimed in order)
  EXPECT_EQ(pos[free_lane], 0);
  EXPECT_EQ(att[free_lane], 0) << "free lanes attend nothing";
  for (int64_t p = 0; p < cfg.pages_per_seq(); ++p)
    EXPECT_EQ(bt[free_lane * cfg.pages_per_seq() + p],
              static_cast<int32_t>(cfg.pool_pages()));
  cache.commit_decode();
  EXPECT_EQ(cache.len(a), 6);
  EXPECT_EQ(cache.len(b), 3);

  // A sequence at token capacity must refuse another extension / step.
  const SequenceHandle d = cache.allocate(8);
  ASSERT_TRUE(d.valid());
  EXPECT_THROW((void)cache.extend(d, kc, kern::Impl::kLS2), Error);
  EXPECT_THROW(cache.begin_decode(), Error) << "active seq at capacity";
  cache.free(d);

  // Freed pages return to the pool; stale handles are rejected.
  EXPECT_FALSE(cache.valid(d));
  EXPECT_THROW((void)cache.len(d), Error);
  cache.free(a);
  cache.free(b);
  EXPECT_EQ(cache.free_pages(), 3 * 2);
  EXPECT_EQ(cache.active_seqs(), 0);
}

TEST(KvCacheTest, PagedStoreAppendGatherWriteTheRightRows) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 1);
  const int64_t S = 2, N = 2, D = 2, page = 2, seq = 4;
  KvCacheConfig cfg;
  cfg.layers = 1;
  cfg.heads = N;
  cfg.head_dim = D;
  cfg.slots = S;
  cfg.seq_tokens = seq;
  cfg.page_tokens = page;
  KvCache cache(cfg);
  const SequenceHandle h0 = cache.allocate(1);
  const SequenceHandle h1 = cache.allocate(2);
  ASSERT_TRUE(h0.valid() && h1.valid());

  // Prefill two rows into h1's lane only, through its block table.
  Tensor k_new = Tensor::empty({1, N, 2, D}, DType::kF32);
  Tensor v_new = Tensor::empty({1, N, 2, D}, DType::kF32);
  k_new.fill_(2.0f);
  v_new.fill_(3.0f);
  Tensor lanes = Tensor::from_vector({static_cast<float>(cache.lane(h1))}, {1}, DType::kI32);
  Tensor wbegin = Tensor::from_vector({0.0f}, {1}, DType::kI32);
  Tensor wend = Tensor::from_vector({2.0f}, {1}, DType::kI32);
  kern::kv_cache_store_paged(kc, kern::Impl::kLS2, k_new, v_new, cache.k_pool(0),
                             cache.v_pool(0), cache.block_table(), lanes, wbegin, wend);

  // Decode append at per-lane positions (h0 at row 1, h1 at row 2).
  ASSERT_TRUE(cache.extend(h0, kc, kern::Impl::kLS2));
  ASSERT_TRUE(cache.extend(h1, kc, kern::Impl::kLS2));
  cache.begin_decode();
  Tensor k1 = Tensor::empty({S, N, 1, D}, DType::kF32);
  Tensor v1 = Tensor::empty({S, N, 1, D}, DType::kF32);
  k1.fill_(7.0f);
  v1.fill_(8.0f);
  kern::kv_cache_append_paged(kc, kern::Impl::kLS2, k1, v1, cache.k_pool(0),
                              cache.v_pool(0), cache.block_table(), cache.positions());

  // Gather through the block table: logical rows come back contiguous, with
  // exact zeros past each lane's attend length (and for never-written rows).
  Tensor kg = Tensor::empty({S, N, seq, D}, DType::kF32);
  Tensor vg = Tensor::empty({S, N, seq, D}, DType::kF32);
  kg.fill_(99.0f);  // stale scratch must be re-zeroed by the gather
  vg.fill_(99.0f);
  kern::kv_cache_gather(kc, kern::Impl::kLS2, cache.k_pool(0), cache.v_pool(0),
                        cache.block_table(), cache.attend_lens(), kg, vg);
  const auto kv = kg.to_vector();
  auto at = [&](int64_t s, int64_t n, int64_t l, int64_t d) {
    return kv[static_cast<size_t>(((s * N + n) * seq + l) * D + d)];
  };
  const int64_t l0 = cache.lane(h0), l1 = cache.lane(h1);
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t d = 0; d < D; ++d) {
      EXPECT_EQ(at(l0, n, 0, d), 0.0f) << "h0 row 0 was never written";
      EXPECT_EQ(at(l0, n, 1, d), 7.0f) << "h0 append landed at row 1";
      EXPECT_EQ(at(l0, n, 2, d), 0.0f) << "beyond attend_len: exact zeros";
      EXPECT_EQ(at(l1, n, 0, d), 2.0f) << "h1 prefill row";
      EXPECT_EQ(at(l1, n, 1, d), 2.0f) << "h1 prefill row";
      EXPECT_EQ(at(l1, n, 2, d), 7.0f) << "h1 append landed at row 2";
      EXPECT_EQ(at(l1, n, 3, d), 0.0f);
    }
  }
  cache.commit_decode();
  EXPECT_EQ(cache.len(h1), 3);
}

// ---------------------------------------------------------------------------
// Sampling kernels
// ---------------------------------------------------------------------------

TEST(SamplingTest, ArgmaxAndTopKOneAgree) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 9);
  const int64_t rows = 5, V = 17;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 11, 0.0f, 3.0f);
  Tensor greedy = Tensor::zeros({rows}, DType::kI32);
  Tensor top1 = Tensor::zeros({rows}, DType::kI32);
  kern::argmax_rows(kc, kern::Impl::kLS2, logits, greedy);
  kern::sample_topk(kc, kern::Impl::kLS2, logits, top1, /*k=*/1, 1.0f, /*stream=*/42);
  EXPECT_EQ(greedy.to_vector(), top1.to_vector());
}

TEST(SamplingTest, SamplingIsDeterministicInVocabAndStreamSensitive) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 9);
  const int64_t rows = 8, V = 31;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 5, 0.0f, 2.0f);
  Tensor a = Tensor::zeros({rows}, DType::kI32);
  Tensor b = Tensor::zeros({rows}, DType::kI32);
  Tensor c = Tensor::zeros({rows}, DType::kI32);
  kern::sample_topk(kc, kern::Impl::kLS2, logits, a, 5, 0.8f, 100);
  kern::sample_topk(kc, kern::Impl::kLS2, logits, b, 5, 0.8f, 100);
  kern::sample_topk(kc, kern::Impl::kLS2, logits, c, 5, 0.8f, 101);
  EXPECT_EQ(a.to_vector(), b.to_vector()) << "same (seed, stream, row) => same token";
  EXPECT_NE(a.to_vector(), c.to_vector()) << "a fresh stream draws differently";
  for (float t : a.to_vector()) {
    EXPECT_GE(t, 0.0f);
    EXPECT_LT(t, static_cast<float>(V));
  }
}

// ---------------------------------------------------------------------------
// Incremental-decode parity: prefill + N x decode_step == full re-forward
// ---------------------------------------------------------------------------

TEST(Gpt2InferTest, IncrementalDecodeMatchesFullForwardBitwise) {
  Session s(ls2_session());
  models::Gpt2 model(tiny_gpt2(), System::kLightSeq2, DType::kF32, 1);
  const int64_t B = 2, L = 10, P = 4, V = model.config().vocab;
  Tensor ids = random_ids(B, L, V, 21);

  // Reference: one full-sequence forward through the non-cached stack.
  const auto ref = model.prefill(s.ctx(), ids, nullptr, {}).to_vector();  // [B, L, V]

  // A 4-token page: the 10-token teacher-forced decode crosses two page
  // boundaries, so the gather path is exercised mid-sequence.
  KvCacheConfig kcfg = model.kv_cache_config(B, 16);
  kcfg.page_tokens = 4;
  KvCache cache(kcfg);
  std::vector<SequenceHandle> seqs;
  for (int64_t b = 0; b < B; ++b) seqs.push_back(cache.allocate(P));

  // Prompt prefill must reproduce the reference at every prompt position.
  Tensor prefix = Tensor::empty({B, P}, DType::kI32);
  {
    const int32_t* ip = ids.data<int32_t>();
    int32_t* pp = prefix.data<int32_t>();
    for (int64_t b = 0; b < B; ++b)
      for (int64_t t = 0; t < P; ++t) pp[b * P + t] = ip[b * L + t];
  }
  const auto pre = model.prefill(s.ctx(), prefix, &cache, seqs).to_vector();  // [B, P, V]
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t t = 0; t < P; ++t) {
      for (int64_t j = 0; j < V; ++j) {
        ASSERT_EQ(pre[static_cast<size_t>((b * P + t) * V + j)],
                  ref[static_cast<size_t>((b * L + t) * V + j)])
            << "prefill b=" << b << " t=" << t << " j=" << j;
      }
    }
  }
  // Teacher-forced decode steps must be BITWISE the full forward's logits.
  for (int64_t t = P; t < L; ++t) {
    for (const SequenceHandle& h : seqs)
      ASSERT_TRUE(cache.extend(h, s.ctx().kern, s.ctx().policy.transform));
    cache.begin_decode();
    const auto step = model.decode_step(s.ctx(), column(ids, t), cache).to_vector();
    cache.commit_decode();
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t j = 0; j < V; ++j) {
        ASSERT_EQ(step[static_cast<size_t>(b * V + j)],
                  ref[static_cast<size_t>((b * L + t) * V + j)])
            << "decode b=" << b << " t=" << t << " j=" << j;
      }
    }
  }
}

// Padded prompts: a batch of different-length prompts right-padded to one
// shape must decode exactly like each sequence run alone at its true length.
TEST(Gpt2InferTest, PaddedBatchMatchesPerSequenceForward) {
  Session s(ls2_session());
  models::Gpt2 model(tiny_gpt2(), System::kLightSeq2, DType::kF32, 2);
  const int64_t V = model.config().vocab;
  const std::vector<int64_t> plen = {3, 5};
  const int64_t B = 2, Lp = 5, steps = 3;
  Tensor seqs = random_ids(B, 8, V, 33);  // prompt + continuation per row

  // Padded prompt batch.
  Tensor padded = Tensor::zeros({B, Lp}, DType::kI32);  // pad id 0
  {
    const int32_t* sp = seqs.data<int32_t>();
    int32_t* pp = padded.data<int32_t>();
    for (int64_t b = 0; b < B; ++b)
      for (int64_t t = 0; t < plen[static_cast<size_t>(b)]; ++t)
        pp[b * Lp + t] = sp[b * 8 + t];
  }
  Tensor lens = Tensor::from_vector({3.0f, 5.0f}, {B}, DType::kI32);

  KvCacheConfig kcfg = model.kv_cache_config(B, 16);
  kcfg.page_tokens = 4;  // ragged lanes land on different page offsets
  KvCache cache(kcfg);
  std::vector<SequenceHandle> handles;
  for (int64_t b = 0; b < B; ++b)
    handles.push_back(cache.allocate(plen[static_cast<size_t>(b)]));
  const auto pre = model.prefill(s.ctx(), padded, &cache, handles, &lens).to_vector();

  // Decode the continuations at per-lane positions (a genuinely ragged
  // batch — the continuous-batching shape).
  std::vector<std::vector<float>> step_logits;
  for (int64_t k = 0; k < steps; ++k) {
    Tensor tok = Tensor::empty({B, 1}, DType::kI32);
    const int32_t* sp = seqs.data<int32_t>();
    int32_t* tp = tok.data<int32_t>();
    for (int64_t b = 0; b < B; ++b) tp[b] = sp[b * 8 + plen[static_cast<size_t>(b)] + k];
    for (const SequenceHandle& h : handles)
      ASSERT_TRUE(cache.extend(h, s.ctx().kern, s.ctx().policy.transform));
    cache.begin_decode();
    step_logits.push_back(model.decode_step(s.ctx(), tok, cache).to_vector());
    cache.commit_decode();
  }

  // Per-sequence unpadded references.
  for (int64_t b = 0; b < B; ++b) {
    const int64_t pl = plen[static_cast<size_t>(b)];
    const int64_t full = pl + steps;
    Tensor solo = Tensor::empty({1, full}, DType::kI32);
    const int32_t* sp = seqs.data<int32_t>();
    int32_t* op = solo.data<int32_t>();
    for (int64_t t = 0; t < full; ++t) op[t] = sp[b * 8 + t];
    const auto ref = model.prefill(s.ctx(), solo, nullptr, {}).to_vector();  // [1, full, V]
    for (int64_t t = 0; t < pl; ++t) {
      for (int64_t j = 0; j < V; ++j) {
        ASSERT_EQ(pre[static_cast<size_t>((b * Lp + t) * V + j)],
                  ref[static_cast<size_t>(t * V + j)])
            << "padded prefill b=" << b << " t=" << t;
      }
    }
    for (int64_t k = 0; k < steps; ++k) {
      for (int64_t j = 0; j < V; ++j) {
        ASSERT_EQ(step_logits[static_cast<size_t>(k)][static_cast<size_t>(b * V + j)],
                  ref[static_cast<size_t>((pl + k) * V + j)])
            << "ragged decode b=" << b << " step=" << k;
      }
    }
  }
}

// The serving path is tied back to the training path: with dropout 0 the
// training forward's loss must be reproducible from prefill logits.
TEST(Gpt2InferTest, PrefillLogitsReproduceTrainingLoss) {
  Session s(ls2_session());
  models::Gpt2 model(tiny_gpt2(/*dropout=*/0.0f), System::kLightSeq2, DType::kF32, 3);
  const int64_t B = 2, L = 8, V = model.config().vocab;
  data::LmDataset ds(V, 512, 5);
  models::LmBatch batch = ds.batch(0, B, L);
  model.params().zero_grads();
  const auto res = model.forward(s.ctx(), batch);
  model.release();

  const auto logits = model.prefill(s.ctx(), batch.ids, nullptr, {}).to_vector();
  const auto targets = batch.targets.to_vector();
  double loss = 0;
  int64_t tokens = 0;
  for (int64_t r = 0; r < B * L; ++r) {
    const int32_t tgt = static_cast<int32_t>(targets[static_cast<size_t>(r)]);
    if (tgt == model.config().pad_id) continue;
    double mx = -1e30, z = 0;
    for (int64_t j = 0; j < V; ++j)
      mx = std::max(mx, static_cast<double>(logits[static_cast<size_t>(r * V + j)]));
    for (int64_t j = 0; j < V; ++j)
      z += std::exp(logits[static_cast<size_t>(r * V + j)] - mx);
    loss += -(logits[static_cast<size_t>(r * V + tgt)] - mx - std::log(z));
    ++tokens;
  }
  ASSERT_EQ(tokens, res.tokens);
  EXPECT_NEAR(loss / tokens, res.loss_per_token(), 1e-4);
}

models::TransformerConfig tiny_mt() {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 32;
  return cfg;
}

TEST(TransformerInferTest, IncrementalDecodeMatchesFullPrefillBitwise) {
  Session s(ls2_session());
  models::Transformer model(tiny_mt(), System::kLightSeq2, DType::kF32, 7);
  data::MtDataset ds(64, 16, 4, 9, 5);
  auto batches = data::make_mt_batches(ds, 64, DType::kF32);
  const models::MtBatch& batch = batches.front();
  const int64_t B = batch.src_ids.shape()[0];
  const int64_t Ls = batch.src_ids.shape()[1];
  const int64_t Lt = batch.tgt_in.shape()[1];
  const int64_t V = model.config().vocab;

  // Reference: encode + full-target prefill (degenerate one-page config —
  // the contiguous-equivalent layout).
  KvCache ref_cache(model.kv_cache_config(B, Lt + 1, Ls));
  std::vector<SequenceHandle> ref_seqs;
  for (int64_t b = 0; b < B; ++b) ref_seqs.push_back(ref_cache.allocate(Lt));
  model.encode(s.ctx(), batch.src_ids, batch.src_lens, ref_cache, ref_seqs);
  const auto ref =
      model.prefill(s.ctx(), batch.tgt_in, ref_cache, ref_seqs, &batch.tgt_lens).to_vector();

  // Incremental against a genuinely PAGED decoder self-cache (the cross
  // blocks stay contiguous either way): encode, prefill the BOS column,
  // then teacher-forced decode.
  KvCacheConfig kcfg = model.kv_cache_config(B, Lt + 1, Ls);
  kcfg.page_tokens = 4;
  KvCache cache(kcfg);
  std::vector<SequenceHandle> handles;
  for (int64_t b = 0; b < B; ++b) handles.push_back(cache.allocate(1));
  model.encode(s.ctx(), batch.src_ids, batch.src_lens, cache, handles);
  const auto tgt_lens = batch.tgt_lens.to_vector();
  const auto pre =
      model.prefill(s.ctx(), column(batch.tgt_in, 0), cache, handles).to_vector();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t j = 0; j < V; ++j) {
      ASSERT_EQ(pre[static_cast<size_t>(b * V + j)], ref[static_cast<size_t>(b * Lt * V + j)])
          << "decoder prefill b=" << b;
    }
  }
  for (int64_t t = 1; t < Lt; ++t) {
    for (const SequenceHandle& h : handles)
      ASSERT_TRUE(cache.extend(h, s.ctx().kern, s.ctx().policy.transform));
    cache.begin_decode();
    const auto step = model.decode_step(s.ctx(), column(batch.tgt_in, t), cache).to_vector();
    cache.commit_decode();
    for (int64_t b = 0; b < B; ++b) {
      if (t >= static_cast<int64_t>(tgt_lens[static_cast<size_t>(b)])) continue;  // padding
      for (int64_t j = 0; j < V; ++j) {
        ASSERT_EQ(step[static_cast<size_t>(b * V + j)],
                  ref[static_cast<size_t>((b * Lt + t) * V + j)])
            << "decode b=" << b << " t=" << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint round-trip into serving (§V-B: train -> convert -> serve)
// ---------------------------------------------------------------------------

TEST(ServingCheckpointTest, TrainedFp32ModelServesIdenticallyAfterReload) {
  const std::string path = "/tmp/ls2_serve_ckpt_f32.bin";
  Session train_s(ls2_session());
  models::Gpt2 trained(tiny_gpt2(), System::kLightSeq2, DType::kF32, 11);
  optim::OptimConfig ocfg;
  ocfg.lr = 1e-3f;
  optim::LightSeq2Trainer trainer(trained.params(), ocfg);
  data::LmDataset ds(48, 1024, 3);
  for (int step = 0; step < 3; ++step) {
    (void)core::train_step(train_s, trained, ds.batch(step, 4, 8), trainer);
  }
  models::save_checkpoint(trained.params(), path);

  Tensor ids = random_ids(2, 6, 48, 44);
  const auto want = trained.prefill(train_s.ctx(), ids, nullptr, {}).to_vector();

  // Fresh inference session, differently-seeded weights, then reload.
  Session serve_s(ls2_session());
  models::Gpt2 served(tiny_gpt2(), System::kLightSeq2, DType::kF32, 99);
  models::load_checkpoint(served.params(), path);
  const auto got = served.prefill(serve_s.ctx(), ids, nullptr, {}).to_vector();
  EXPECT_EQ(got, want) << "first-step serving logits must match the trained model";

  // The checkpoint also serves under a baseline policy (same math, other
  // kernel family).
  SessionConfig fcfg;
  fcfg.system = System::kFairseq;
  Session fair_s(fcfg);
  models::Gpt2 fair(tiny_gpt2(), System::kFairseq, DType::kF32, 5);
  models::load_checkpoint(fair.params(), path);
  const auto fair_logits = fair.prefill(fair_s.ctx(), ids, nullptr, {}).to_vector();
  ASSERT_EQ(fair_logits.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(fair_logits[i], want[i], 1e-4f) << i;
  }
  std::remove(path.c_str());
}

TEST(ServingCheckpointTest, Fp16TrainedModelReloadsIntoFp32Serving) {
  const std::string path = "/tmp/ls2_serve_ckpt_f16.bin";
  Session train_s(ls2_session(DType::kF16));
  models::Gpt2 trained(tiny_gpt2(), System::kLightSeq2, DType::kF16, 13);
  optim::OptimConfig ocfg;
  ocfg.lr = 1e-3f;
  optim::LightSeq2Trainer trainer(trained.params(), ocfg);
  data::LmDataset ds(48, 1024, 7);
  for (int step = 0; step < 3; ++step) {
    (void)core::train_step(train_s, trained, ds.batch(step, 4, 8), trainer);
  }
  models::save_checkpoint(trained.params(), path);  // serialises FP32

  Tensor ids = random_ids(2, 6, 48, 45);
  Session a_s(ls2_session());
  models::Gpt2 a(tiny_gpt2(), System::kLightSeq2, DType::kF32, 101);
  models::load_checkpoint(a.params(), path);
  const auto la = a.prefill(a_s.ctx(), ids, nullptr, {}).to_vector();

  Session b_s(ls2_session());
  models::Gpt2 b(tiny_gpt2(), System::kLightSeq2, DType::kF32, 202);
  models::load_checkpoint(b.params(), path);
  const auto lb = b.prefill(b_s.ctx(), ids, nullptr, {}).to_vector();

  EXPECT_EQ(la, lb) << "independent reloads must serve identical first-step logits";
  for (float v : la) ASSERT_TRUE(std::isfinite(v));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Continuous batching + decode-step graph replay
// ---------------------------------------------------------------------------

std::vector<Request> test_requests(int64_t n, int64_t vocab, uint64_t seed,
                                   double rate_per_sec = 5000.0) {
  return poisson_requests(n, rate_per_sec, /*prompt*/ 2, 6, /*gen*/ 3, 10, vocab, seed);
}

TEST(ContinuousBatcherTest, ServesEveryRequestAndReplaysTheDecodeStep) {
  const auto cfg = tiny_gpt2();
  const int64_t slots = 2, max_len = 24;
  SessionConfig sc = ls2_session();
  sc.arena_bytes = serve_capacity_scan(cfg, DType::kF32, slots, max_len, 8);
  sc.graph_capture = true;
  Session s(sc);
  models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 17, s.param_alloc());
  KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  ServeConfig scfg;
  scfg.sampling.greedy = false;
  scfg.sampling.temperature = 0.9f;
  scfg.sampling.top_k = 8;
  ContinuousBatcher engine(s, model, cache, scfg);

  const auto reqs = test_requests(6, cfg.vocab, 71);
  ServeReport report = engine.serve(reqs);

  ASSERT_EQ(report.requests.size(), reqs.size());
  int64_t total = 0;
  for (const RequestStats& st : report.requests) {
    EXPECT_GE(st.admitted_us, st.arrival_us);
    EXPECT_GE(st.first_token_us, st.admitted_us);
    EXPECT_GE(st.done_us, st.first_token_us);
    EXPECT_GE(st.generated, 1);
    EXPECT_EQ(st.generated, static_cast<int64_t>(st.tokens.size()));
    for (int32_t tok : st.tokens) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, cfg.vocab);
    }
    total += st.generated;
  }
  EXPECT_EQ(report.generated_tokens, total);
  EXPECT_GT(report.tokens_per_sec, 0);
  EXPECT_FALSE(s.graph_poisoned()) << s.graph_poison_reason();
  EXPECT_GT(report.replayed_steps, 0) << "steady-state decode must replay the graph";
  EXPECT_EQ(report.replayed_steps, report.decode_steps - 2)
      << "all but the warm-up and capture decode steps replay";

  // Replay must not change a single sampled token: rerun the identical
  // workload eagerly and compare the generated ids.
  SessionConfig ec = ls2_session();
  ec.arena_bytes = sc.arena_bytes;
  Session es(ec);
  models::Gpt2 emodel(cfg, System::kLightSeq2, DType::kF32, 17, es.param_alloc());
  KvCache ecache(emodel.kv_cache_config(slots, max_len), es.param_alloc());
  ContinuousBatcher eager(es, emodel, ecache, scfg);
  ServeReport ereport = eager.serve(reqs);
  ASSERT_EQ(ereport.requests.size(), report.requests.size());
  for (size_t i = 0; i < report.requests.size(); ++i) {
    EXPECT_EQ(report.requests[i].tokens, ereport.requests[i].tokens)
        << "request " << i << ": replayed decode diverged from eager";
  }
}

TEST(ContinuousBatcherTest, EosRetiresEarlyInExecuteMode) {
  const auto cfg = tiny_gpt2();
  SessionConfig sc = ls2_session();
  Session s(sc);
  models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 23);
  KvCache cache(model.kv_cache_config(2, 24));
  ServeConfig scfg;
  scfg.eos_id = data::kEos;
  ContinuousBatcher engine(s, model, cache, scfg);
  const auto reqs = test_requests(4, cfg.vocab, 5);  // id == index
  ServeReport report = engine.serve(reqs);
  for (const RequestStats& st : report.requests) {
    EXPECT_GE(st.generated, 1);
    const int64_t cap = reqs[static_cast<size_t>(st.id)].spec.gen_len;
    EXPECT_LE(st.generated, cap);
    // Either ran to its cap or stopped at EOS.
    if (st.generated < cap) {
      EXPECT_EQ(st.tokens.back(), data::kEos);
    }
  }
}

// A request whose cap exceeds the slot's K/V capacity must be retired when
// the block fills — it caps generation, it must not crash the serve loop
// (KvCache::begin_decode throws on an over-full slot).
TEST(ContinuousBatcherTest, CacheCapacityCapsGenerationInsteadOfThrowing) {
  const auto cfg = tiny_gpt2();
  const int64_t max_len = 12;
  Session s(ls2_session());
  models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 29);
  KvCache cache(model.kv_cache_config(2, max_len));
  ContinuousBatcher engine(s, model, cache, {});
  Request req;
  req.id = 0;
  req.prompt = {5, 6, 7, 8};
  req.spec.gen_len = 100;  // far beyond the 12-token sequence budget
  ServeReport report = engine.serve({req});
  ASSERT_EQ(report.requests.size(), 1u);
  // prefill caches 4 tokens and samples 1; each decode step appends the
  // previous sample and emits one more, until the block is full.
  EXPECT_EQ(report.requests[0].generated, 1 + (max_len - 4));
}

// Model-only serving at a bench-like scale: continuous batching must beat
// the static-wave baseline by >= 1.5x tokens/sec under Poisson arrivals.
TEST(ContinuousBatcherTest, ContinuousBeatsStaticThroughput) {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 4;
  cfg.max_len = 256;
  const int64_t slots = 8, max_len = 144;
  const auto reqs = poisson_requests(48, /*rate=*/4000.0, 4, 8, 8, 128, cfg.vocab, 97);

  auto run = [&](BatchMode mode) {
    SessionConfig sc = ls2_session(DType::kF16);
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.arena_bytes = serve_capacity_scan(cfg, DType::kF16, slots, max_len, 8);
    Session s(sc);
    models::Gpt2 model(cfg, System::kLightSeq2, DType::kF16, 31, s.param_alloc());
    KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
    ServeConfig scfg;
    scfg.mode = mode;
    ContinuousBatcher engine(s, model, cache, scfg);
    return engine.serve(reqs);
  };
  const ServeReport cont = run(BatchMode::kContinuous);
  const ServeReport stat = run(BatchMode::kStatic);
  EXPECT_EQ(cont.generated_tokens, stat.generated_tokens) << "same workload both modes";
  EXPECT_GE(cont.tokens_per_sec, 1.5 * stat.tokens_per_sec)
      << "continuous " << cont.tokens_per_sec << " vs static " << stat.tokens_per_sec;
  EXPECT_LE(cont.p99_latency_us, stat.p99_latency_us);
}

// Launch-bound regime: replaying the captured decode step must beat eager
// decoding end-to-end (small slot count, deep-ish stack, short kernels).
TEST(ContinuousBatcherTest, GraphReplayBeatsEagerOnLaunchBoundProfile) {
  models::Gpt2Config cfg;
  cfg.vocab = 256;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 8;
  cfg.max_len = 128;
  const int64_t slots = 2, max_len = 96;
  const auto reqs = poisson_requests(24, /*rate=*/50000.0, 2, 4, 24, 64, cfg.vocab, 13);

  auto run = [&](bool graph) {
    SessionConfig sc = ls2_session(DType::kF16);
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.arena_bytes = serve_capacity_scan(cfg, DType::kF16, slots, max_len, 4);
    sc.graph_capture = graph;
    Session s(sc);
    models::Gpt2 model(cfg, System::kLightSeq2, DType::kF16, 41, s.param_alloc());
    KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
    ContinuousBatcher engine(s, model, cache, {});
    return engine.serve(reqs);
  };
  const ServeReport eager = run(false);
  const ServeReport graph = run(true);
  EXPECT_GT(graph.replayed_steps, 0);
  EXPECT_EQ(eager.generated_tokens, graph.generated_tokens);
  EXPECT_GE(graph.tokens_per_sec, 1.2 * eager.tokens_per_sec)
      << "graph " << graph.tokens_per_sec << " vs eager " << eager.tokens_per_sec;
}

// ---------------------------------------------------------------------------
// Paged KV cache: bitwise parity and copy-on-write isolation
// ---------------------------------------------------------------------------

// The tentpole guarantee: serving through the paged cache (small pages +
// prefix sharing) emits BITWISE the tokens of the degenerate
// one-page-per-sequence config (the contiguous-equivalent layout), in FP32
// execute mode, both eagerly and with the decode step graph-replayed.
TEST(PagedKvTest, PagedVsContiguousBitwiseTokenParity) {
  const auto cfg = tiny_gpt2();
  const int64_t slots = 2, max_len = 24;

  // A shared-system-prompt burst: two distinct 9-token prompts, two
  // requests each, paired back-to-back so the twins are RESIDENT together —
  // the regime where the second admission hits the first one's registered
  // full page.
  std::vector<Request> reqs;
  Tensor prompts = random_ids(2, 9, cfg.vocab, 55);
  const int32_t* pp = prompts.data<int32_t>();
  for (int64_t i = 0; i < 4; ++i) {
    Request r;
    r.id = i;
    r.prompt.assign(pp + (i / 2) * 9, pp + (i / 2) * 9 + 9);
    r.spec.gen_len = 6;
    r.arrival_us = static_cast<double>(i);
    reqs.push_back(std::move(r));
  }

  auto run = [&](int64_t page_tokens, bool sharing, bool graph) {
    SessionConfig sc = ls2_session();
    sc.graph_capture = graph;
    sc.arena_bytes = serve_capacity_scan(cfg, DType::kF32, slots, max_len, 12);
    Session s(sc);
    models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 17, s.param_alloc());
    KvCacheConfig kcfg = model.kv_cache_config(slots, max_len);
    kcfg.page_tokens = page_tokens;
    kcfg.prefix_sharing = sharing;
    KvCache cache(kcfg, s.param_alloc());
    ContinuousBatcher engine(s, model, cache, {});
    ServeReport rep = engine.serve(reqs);
    EXPECT_FALSE(s.graph_poisoned()) << s.graph_poison_reason();
    return rep;
  };
  const ServeReport base = run(/*degenerate*/ 0, false, false);
  const ServeReport paged = run(8, true, false);
  const ServeReport replay = run(8, true, true);

  EXPECT_EQ(base.shared_page_hits, 0) << "sharing off: no registry";
  EXPECT_GT(paged.shared_page_hits, 0)
      << "the duplicated 9-token prompt must reuse its full first page";
  // Every 9-token prompt spans 2 pages; each registry hit replaces one
  // allocation, so hits + fresh allocations account for all prompt pages.
  EXPECT_EQ(paged.prefill_page_allocs + paged.shared_page_hits, 4 * 2);
  EXPECT_LT(paged.prefill_page_allocs, 4 * 2)
      << "sharing must cut prefill page allocations on the duplicated prompts";
  EXPECT_GT(replay.replayed_steps, 0);

  ASSERT_EQ(base.requests.size(), reqs.size());
  ASSERT_EQ(paged.requests.size(), reqs.size());
  ASSERT_EQ(replay.requests.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(paged.requests[i].tokens, base.requests[i].tokens)
        << "request " << i << ": paged decode diverged from contiguous";
    EXPECT_EQ(replay.requests[i].tokens, base.requests[i].tokens)
        << "request " << i << ": replayed paged decode diverged";
  }
}

// fork() + copy-on-write: after a branch point, parent and child must each
// decode exactly as if they owned a private contiguous cache — the shared
// tail page is copied on first write, never aliased.
TEST(PagedKvTest, ForkCopyOnWriteIsolatesSequencesBitwise) {
  Session s(ls2_session());
  models::Gpt2 model(tiny_gpt2(), System::kLightSeq2, DType::kF32, 1);
  const int64_t V = model.config().vocab, P = 6, steps = 3;
  KvCacheConfig kcfg = model.kv_cache_config(3, 16);
  kcfg.page_tokens = 4;  // prompt 6 = one full page + a 2-row tail page
  Tensor prompt = random_ids(1, P, V, 66);
  const std::vector<int32_t> contA = {7, 11, 13}, contB = {9, 17, 5};

  // Forked pair: prefill once, branch, then decode different continuations.
  KvCache cache(kcfg);
  const SequenceHandle hf = cache.allocate(P);
  (void)model.prefill(s.ctx(), prompt, &cache, {hf});
  const SequenceHandle ff = cache.fork(hf);
  ASSERT_TRUE(ff.valid());
  EXPECT_EQ(cache.len(ff), P);
  EXPECT_EQ(cache.stats().forks, 1);

  // Solo references: each continuation alone in its own cache.
  auto solo = [&](const std::vector<int32_t>& cont) {
    KvCache c(kcfg);
    const SequenceHandle h = c.allocate(P);
    (void)model.prefill(s.ctx(), prompt, &c, {h});
    std::vector<std::vector<float>> out;
    Tensor ids = Tensor::zeros({3, 1}, DType::kI32);
    for (int64_t k = 0; k < steps; ++k) {
      ids.data<int32_t>()[c.lane(h)] = cont[static_cast<size_t>(k)];
      EXPECT_TRUE(c.extend(h, s.ctx().kern, s.ctx().policy.transform));
      c.begin_decode();
      out.push_back(model.decode_step(s.ctx(), ids, c).to_vector());
      c.commit_decode();
    }
    return out;
  };
  const auto refA = solo(contA);
  const auto refB = solo(contB);

  Tensor ids = Tensor::zeros({3, 1}, DType::kI32);
  for (int64_t k = 0; k < steps; ++k) {
    ids.data<int32_t>()[cache.lane(hf)] = contA[static_cast<size_t>(k)];
    ids.data<int32_t>()[cache.lane(ff)] = contB[static_cast<size_t>(k)];
    ASSERT_TRUE(cache.extend(hf, s.ctx().kern, s.ctx().policy.transform));
    ASSERT_TRUE(cache.extend(ff, s.ctx().kern, s.ctx().policy.transform));
    cache.begin_decode();
    const auto step = model.decode_step(s.ctx(), ids, cache).to_vector();
    cache.commit_decode();
    // Row-independent kernels: compare each lane against the solo run's
    // lane 0 (where solo() placed its only sequence).
    for (int64_t j = 0; j < V; ++j) {
      ASSERT_EQ(step[static_cast<size_t>(cache.lane(hf) * V + j)],
                refA[static_cast<size_t>(k)][static_cast<size_t>(j)])
          << "parent diverged at step " << k << " j=" << j;
      ASSERT_EQ(step[static_cast<size_t>(cache.lane(ff) * V + j)],
                refB[static_cast<size_t>(k)][static_cast<size_t>(j)])
          << "fork diverged at step " << k << " j=" << j;
    }
  }
  EXPECT_EQ(cache.stats().cow_copies, 1)
      << "exactly one tail-page copy: the first extension after the fork";
}

// Fixed-size pages cannot fragment externally: after any admit/retire
// interleaving, an allocation succeeds whenever its live tokens fit the
// free pages — scattered (non-adjacent) page ids are as good as a
// contiguous run, because the block table supplies the ordering.
TEST(PagedKvTest, FragmentedFreePagesStillBackAnyFittingWorkload) {
  KvCacheConfig cfg;
  cfg.layers = 1;
  cfg.heads = 1;
  cfg.head_dim = 2;
  cfg.slots = 4;
  cfg.seq_tokens = 16;
  cfg.page_tokens = 4;
  cfg.total_pages = 8;
  KvCache cache(cfg);

  // Fill the pool: four 8-token sequences = 2 pages each.
  std::vector<SequenceHandle> seqs;
  for (int i = 0; i < 4; ++i) {
    seqs.push_back(cache.allocate(8));
    ASSERT_TRUE(seqs.back().valid());
  }
  ASSERT_EQ(cache.free_pages(), 0);
  EXPECT_FALSE(cache.allocate(1).valid()) << "a dry pool must refuse";

  // Retire sequences 0 and 2: four free pages, interleaved with the
  // survivors' pages — the classic fragmentation shape.
  cache.free(seqs[0]);
  cache.free(seqs[2]);
  ASSERT_EQ(cache.free_pages(), 4);

  // A full-length sequence (4 pages) fits its live tokens exactly and
  // MUST be admitted, scattered pages notwithstanding.
  const SequenceHandle big = cache.allocate(16);
  ASSERT_TRUE(big.valid()) << "fitting workload refused: external fragmentation";
  EXPECT_EQ(cache.len(big), 16);
  EXPECT_EQ(cache.capacity(big), 16);
  EXPECT_EQ(cache.free_pages(), 0);

  // Its block table row maps four DISTINCT real pages (never the trash
  // page), in whatever pool order the free list produced.
  const int32_t* table = cache.block_table().data<int32_t>();
  const int64_t pps = cache.config().pages_per_seq();
  std::set<int32_t> pages;
  for (int64_t p = 0; p < 4; ++p) {
    const int32_t id = table[cache.lane(big) * pps + p];
    EXPECT_GE(id, 0);
    EXPECT_LT(id, cfg.pool_pages());
    pages.insert(id);
  }
  EXPECT_EQ(pages.size(), 4u) << "block table rows must map distinct pages";
}

// Chrome-trace export: serving timelines open in chrome://tracing.
TEST(ChromeTraceTest, ServeTimelineExports) {
  const auto cfg = tiny_gpt2();
  SessionConfig sc = ls2_session();
  sc.record_timeline = true;
  Session s(sc);
  models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 3);
  KvCache cache(model.kv_cache_config(2, 24));
  ContinuousBatcher engine(s, model, cache, {});
  (void)engine.serve(test_requests(3, cfg.vocab, 9));

  const std::string path = "/tmp/ls2_serve_trace.json";
  s.device().timeline().write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("compute stream"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ls2::infer
