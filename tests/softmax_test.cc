#include "kernels/softmax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class SoftmaxTest : public ::testing::Test {
 protected:
  SoftmaxTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}

  Tensor randn(Shape shape, uint64_t stream) {
    Tensor t = Tensor::empty(std::move(shape), DType::kF32);
    kc.rng.fill_normal(t, 3000 + stream, 0.0f, 2.0f);
    return t;
  }

  simgpu::Device dev;
  KernelContext kc;
};

TEST_F(SoftmaxTest, RowsSumToOne) {
  const int64_t rows = 33, cols = 57;
  Tensor x = randn({rows, cols}, 1);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  softmax_fw(kc, Impl::kLS2, x, y);
  const auto yv = y.to_vector();
  for (int64_t r = 0; r < rows; ++r) {
    double s = 0;
    for (int64_t j = 0; j < cols; ++j) {
      s += yv[r * cols + j];
      ASSERT_GE(yv[r * cols + j], 0.0f);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST_F(SoftmaxTest, StableUnderLargeLogits) {
  Tensor x = Tensor::from_vector({1000.0f, 1001.0f, 999.0f}, {1, 3}, DType::kF32);
  Tensor y = Tensor::empty({1, 3}, DType::kF32);
  softmax_fw(kc, Impl::kLS2, x, y);
  const auto yv = y.to_vector();
  for (float v : yv) EXPECT_FALSE(std::isnan(v));
  EXPECT_GT(yv[1], yv[0]);
  EXPECT_GT(yv[0], yv[2]);
}

TEST_F(SoftmaxTest, ImplsIdentical) {
  const int64_t rows = 16, cols = 40;
  Tensor x = randn({rows, cols}, 1);
  std::vector<float> first;
  for (Impl impl : {Impl::kTorch, Impl::kTensorFlow, Impl::kDeepSpeed, Impl::kLS2}) {
    Tensor y = Tensor::empty({rows, cols}, DType::kF32);
    softmax_fw(kc, impl, x, y);
    if (first.empty()) {
      first = y.to_vector();
    } else {
      EXPECT_EQ(y.to_vector(), first) << impl_name(impl);
    }
  }
}

TEST_F(SoftmaxTest, BackwardMatchesFiniteDifference) {
  const int64_t rows = 3, cols = 11;
  Tensor x = randn({rows, cols}, 1);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  softmax_fw(kc, Impl::kLS2, x, y);
  Tensor dy = randn({rows, cols}, 2);
  Tensor dx = Tensor::empty({rows, cols}, DType::kF32);
  softmax_bw(kc, Impl::kLS2, dy, y, dx);

  auto objective = [&](const std::vector<float>& xv) {
    double s = 0;
    const auto dyv = dy.to_vector();
    for (int64_t r = 0; r < rows; ++r) {
      double mx = -1e30;
      for (int64_t j = 0; j < cols; ++j) mx = std::max(mx, (double)xv[r * cols + j]);
      double z = 0;
      for (int64_t j = 0; j < cols; ++j) z += std::exp(xv[r * cols + j] - mx);
      for (int64_t j = 0; j < cols; ++j)
        s += dyv[r * cols + j] * std::exp(xv[r * cols + j] - mx) / z;
    }
    return s;
  };
  const float h = 1e-3f;
  auto xv = x.to_vector();
  const auto dxv = dx.to_vector();
  for (int64_t i = 0; i < rows * cols; ++i) {
    auto xp = xv, xm = xv;
    xp[static_cast<size_t>(i)] += h;
    xm[static_cast<size_t>(i)] -= h;
    const double numeric = (objective(xp) - objective(xm)) / (2 * h);
    EXPECT_NEAR(dxv[static_cast<size_t>(i)], numeric, 2e-3) << i;
  }
}

TEST_F(SoftmaxTest, CausalMaskZerosFuture) {
  const int64_t B = 2, N = 2, L = 5;
  Tensor x = randn({B, N, L, L}, 1);
  Tensor y = Tensor::empty({B, N, L, L}, DType::kF32);
  attn_softmax_fw(kc, Impl::kLS2, x, y, /*causal=*/true, nullptr);
  const auto yv = y.to_vector();
  for (int64_t r = 0; r < B * N * L; ++r) {
    const int64_t q = r % L;
    double s = 0;
    for (int64_t k = 0; k < L; ++k) {
      const float v = yv[r * L + k];
      if (k > q) {
        EXPECT_EQ(v, 0.0f) << "future position unmasked";
      }
      s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST_F(SoftmaxTest, KeyLengthMaskZerosPadding) {
  const int64_t B = 3, N = 1, Lq = 4, Lk = 6;
  Tensor x = randn({B, N, Lq, Lk}, 1);
  Tensor lens = Tensor::from_vector({6.0f, 3.0f, 1.0f}, {B}, DType::kI32);
  Tensor y = Tensor::empty({B, N, Lq, Lk}, DType::kF32);
  attn_softmax_fw(kc, Impl::kLS2, x, y, /*causal=*/false, &lens);
  const auto yv = y.to_vector();
  const int valid[3] = {6, 3, 1};
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t q = 0; q < Lq; ++q) {
      double s = 0;
      for (int64_t k = 0; k < Lk; ++k) {
        const float v = yv[((b * N) * Lq + q) * Lk + k];
        if (k >= valid[b]) EXPECT_EQ(v, 0.0f);
        s += v;
      }
      EXPECT_NEAR(s, 1.0, 1e-5);
    }
  }
}

TEST_F(SoftmaxTest, MaskedBaselineAndFusedAgree) {
  const int64_t B = 2, N = 3, Lq = 7, Lk = 7;
  Tensor x = randn({B, N, Lq, Lk}, 1);
  Tensor lens = Tensor::from_vector({7.0f, 4.0f}, {B}, DType::kI32);
  Tensor y1 = Tensor::empty({B, N, Lq, Lk}, DType::kF32);
  Tensor y2 = Tensor::empty({B, N, Lq, Lk}, DType::kF32);
  attn_softmax_fw(kc, Impl::kTorch, x, y1, true, &lens);
  attn_softmax_fw(kc, Impl::kLS2, x, y2, true, &lens);
  EXPECT_EQ(y1.to_vector(), y2.to_vector());
}

TEST_F(SoftmaxTest, BaselineChargesMaskedFillLaunch) {
  const int64_t B = 2, N = 2, L = 8;
  Tensor x = randn({B, N, L, L}, 1);
  Tensor y = Tensor::empty({B, N, L, L}, DType::kF32);
  dev.reset();
  attn_softmax_fw(kc, Impl::kTorch, x, y, true, nullptr);
  EXPECT_EQ(dev.stats().launches, 2);  // masked_fill + generic softmax kernel
  dev.reset();
  attn_softmax_fw(kc, Impl::kLS2, x, y, true, nullptr);
  EXPECT_EQ(dev.stats().launches, 1);  // mask applied inline
}

TEST(SoftmaxTunerTest, WideRowsGetBiggerTeams) {
  const SoftmaxConfig narrow = tune_softmax(1 << 20, 16);
  const SoftmaxConfig wide = tune_softmax(1 << 10, 4096);
  EXPECT_LT(narrow.threads_per_row, wide.threads_per_row);
}

TEST(SoftmaxTunerTest, TunedBeatsOrMatchesEveryFixedTemplate) {
  for (int64_t rows : {256, 4096, 1 << 16}) {
    for (int64_t cols : {8, 64, 512, 4096}) {
      const SoftmaxConfig best = tune_softmax(rows, cols);
      const double best_eff = softmax_config_efficiency(best, rows, cols);
      for (const SoftmaxConfig& c : softmax_candidates()) {
        EXPECT_GE(best_eff + 1e-12, softmax_config_efficiency(c, rows, cols))
            << rows << "x" << cols << " vs " << c.tag;
      }
    }
  }
}

TEST(SoftmaxTunerTest, CacheIsStable) {
  const SoftmaxConfig a = tune_softmax(1000, 100);
  const SoftmaxConfig b = tune_softmax(1000, 100);
  EXPECT_EQ(a.threads_per_row, b.threads_per_row);
}

TEST(SoftmaxTunerTest, ResetTunerRetunesDeterministically) {
  const SoftmaxConfig a = tune_softmax(1 << 12, 256);
  reset_softmax_tuner();
  const SoftmaxConfig b = tune_softmax(1 << 12, 256);
  EXPECT_EQ(a.threads_per_row, b.threads_per_row);
  EXPECT_STREQ(a.tag, b.tag);
}

// The cache is keyed by the device's thread-residency capacity: a bench
// sweeping profiles must get each profile's own winner, never a stale one
// tuned for another device. Verified against a fresh argmax per profile.
TEST(SoftmaxTunerTest, CacheIsKeyedByDeviceIdentity) {
  reset_softmax_tuner();
  const double devices[] = {163840.0, 8 * 163840.0};
  for (int64_t rows : {256, 4096}) {
    for (int64_t cols : {32, 512}) {
      // Warm the cache with the first device, then query all of them; each
      // answer must equal the winner recomputed from scratch for THAT
      // device.
      (void)tune_softmax(rows, cols, devices[0]);
      for (double dt : devices) {
        const SoftmaxConfig got = tune_softmax(rows, cols, dt);
        SoftmaxConfig want = softmax_candidates().front();
        double want_eff = -1;
        for (const SoftmaxConfig& c : softmax_candidates()) {
          const double eff = softmax_config_efficiency(c, rows, cols, dt);
          if (eff > want_eff) {
            want_eff = eff;
            want = c;
          }
        }
        EXPECT_EQ(got.threads_per_row, want.threads_per_row)
            << rows << "x" << cols << " on device_threads " << dt;
      }
    }
  }
  // And the occupancy term really does shift the winner between devices for
  // occupancy-limited shapes: a device with 8x the residency prefers teams
  // at least as large (more threads needed to fill it).
  const SoftmaxConfig small_dev = tune_softmax(256, 512, devices[0]);
  const SoftmaxConfig big_dev = tune_softmax(256, 512, devices[1]);
  EXPECT_GE(big_dev.threads_per_row, small_dev.threads_per_row);
}

// Serving shapes: the single-query decode softmax is rows = batch*heads
// (tiny) by cols = L_past (long) — the opposite corner from training's
// million-row score tensors. The per-profile tuner cache must hand each
// device its own winner on these shapes too (the serving engine hits this
// every decode step).
TEST(SoftmaxTunerTest, DecodeShapesGetPerProfileWinners) {
  reset_softmax_tuner();
  const double devices[] = {simgpu::v100().resident_threads,
                            simgpu::a100().resident_threads};
  // rows = slots * heads for slot counts 4..64; cols = cached lengths.
  for (int64_t rows : {8, 64, 512}) {
    for (int64_t cols : {128, 512, 1024}) {
      (void)tune_softmax(rows, cols, devices[0]);  // warm with the first device
      for (double dt : devices) {
        const SoftmaxConfig got = tune_softmax(rows, cols, dt);
        SoftmaxConfig want = softmax_candidates().front();
        double want_eff = -1;
        for (const SoftmaxConfig& c : softmax_candidates()) {
          const double eff = softmax_config_efficiency(c, rows, cols, dt);
          if (eff > want_eff) {
            want_eff = eff;
            want = c;
          }
        }
        EXPECT_EQ(got.threads_per_row, want.threads_per_row)
            << "decode shape " << rows << "x" << cols << " on device_threads " << dt;
      }
    }
  }
  // Long cached rows with few queries want big cooperative teams — decode
  // must not inherit the narrow-row training template.
  EXPECT_GE(tune_softmax(8, 1024).threads_per_row, tune_softmax(1 << 20, 16).threads_per_row);
}

// The decode-step softmax ([S, N, 1, Lmax] + attend_lens) must equal the
// last valid row of the full causal softmax — the kernel-level statement of
// incremental-decode parity.
TEST_F(SoftmaxTest, SingleQueryDecodeRowMatchesFullCausalRow) {
  const int64_t B = 3, N = 2, L = 6, Lmax = 9;
  Tensor full = randn({B, N, L, L}, 1);
  Tensor full_y = Tensor::empty({B, N, L, L}, DType::kF32);
  attn_softmax_fw(kc, Impl::kLS2, full, full_y, /*causal=*/true, nullptr);

  // Decode view: each sequence's scores against its L cached keys, padded
  // out to the static cache width Lmax (tail is garbage the mask hides).
  Tensor dec = Tensor::empty({B, N, 1, Lmax}, DType::kF32);
  {
    const auto fv = full.to_vector();
    auto dv = std::vector<float>(static_cast<size_t>(B * N * Lmax), 1e30f);
    for (int64_t b = 0; b < B; ++b)
      for (int64_t n = 0; n < N; ++n)
        for (int64_t k = 0; k < L; ++k)
          dv[static_cast<size_t>((b * N + n) * Lmax + k)] =
              fv[static_cast<size_t>((((b * N + n) * L) + (L - 1)) * L + k)];
    dec.copy_from(dv);
  }
  Tensor lens = Tensor::from_vector({static_cast<float>(L), static_cast<float>(L),
                                     static_cast<float>(L)},
                                    {B}, DType::kI32);
  Tensor dec_y = Tensor::empty({B, N, 1, Lmax}, DType::kF32);
  attn_softmax_fw(kc, Impl::kLS2, dec, dec_y, /*causal=*/false, &lens);

  const auto fy = full_y.to_vector();
  const auto dy = dec_y.to_vector();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t n = 0; n < N; ++n) {
      for (int64_t k = 0; k < Lmax; ++k) {
        const float got = dy[static_cast<size_t>((b * N + n) * Lmax + k)];
        if (k < L) {
          EXPECT_EQ(got, fy[static_cast<size_t>((((b * N + n) * L) + (L - 1)) * L + k)]);
        } else {
          EXPECT_EQ(got, 0.0f) << "masked cache tail must be exactly zero";
        }
      }
    }
  }
}

// Fig. 17(b): LightSeq2's speedup over the baseline grows with sequence
// length (shape-specialised templates).
TEST(SoftmaxModelTest, SpeedupGrowsWithSequenceLength) {
  simgpu::Device mdev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  KernelContext mkc(mdev, nullptr, 0);
  auto speedup = [&](int64_t batch, int64_t len) {
    Tensor x = Tensor::empty({batch, 16, len, len}, DType::kF16);
    Tensor y = Tensor::empty({batch, 16, len, len}, DType::kF16);
    mdev.reset();
    attn_softmax_fw(mkc, Impl::kTorch, x, y, false, nullptr);
    const double torch_t = mdev.clock_us();
    mdev.reset();
    attn_softmax_fw(mkc, Impl::kLS2, x, y, false, nullptr);
    return torch_t / mdev.clock_us();
  };
  const double small = speedup(256, 32);
  const double large = speedup(32, 256);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 1.5);
}

}  // namespace
}  // namespace ls2::kern
