// The serving fleet (DESIGN.md §11). The contract, in order of importance:
//
//  1. TOKEN-EXACT FAILOVER — killing one of three replicas mid-decode loses
//     no request and changes no answer: evacuated residents re-dispatch with
//     prompt + generated prefix, the counter-RNG re-prefill rebuilds their
//     KV bitwise (execute mode, FP32 greedy), and every served stream equals
//     the unfaulted single-replica run's.
//  2. ZERO-DOWNTIME RELOAD — a rolling parameter reload drains replicas one
//     at a time and drops nothing.
//  3. TAIL RESCUE — hedged dispatch beats plain JSQ p99 under an injected
//     straggler replica.
//  4. HONEST STATS — a re-dispatched request keeps its ORIGINAL arrival, so
//     queue-wait / latency percentiles are never flattered by failure
//     (satellite: Request::enqueue_us vs arrival_us).
//  5. SHEDDING EDGE CASES — exact queue-bound boundary, deadline == first
//     admission, shed-vs-deadline interplay under a burst.
//  6. LIVENESS — a slow-but-alive replica is NEVER falsely evicted by the
//     heartbeat watcher (SessionConfig-driven intervals).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "dist/failure.h"
#include "infer/batcher.h"
#include "infer/fleet.h"
#include "simgpu/fault.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;
using simgpu::FaultPlan;

models::Gpt2Config fleet_gpt2() {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 4;
  cfg.max_len = 256;
  return cfg;
}

infer::FleetConfig fleet_config(int replicas, simgpu::ExecMode mode,
                                DType dt = DType::kF16) {
  infer::FleetConfig fc;
  fc.replicas = replicas;
  fc.model = fleet_gpt2();
  fc.model_seed = 31;
  fc.slots = 4;
  fc.max_len = 144;
  fc.session.mode = mode;
  fc.session.dtype = dt;
  return fc;
}

/// The unfaulted single-replica reference: same model seed, same engine
/// knobs — what the fleet's merged token streams must reproduce.
infer::ServeReport single_replica_baseline(const infer::FleetConfig& fc,
                                           const std::vector<infer::Request>& reqs) {
  SessionConfig sc = fc.session;
  sc.arena_bytes = infer::serve_capacity_scan(fc.model, sc.dtype, fc.slots,
                                              fc.max_len, fc.max_len - 1);
  Session s(sc);
  models::Gpt2 model(fc.model, sc.system, sc.dtype, fc.model_seed, s.param_alloc());
  infer::KvCache cache(model.kv_cache_config(fc.slots, fc.max_len), s.param_alloc());
  infer::ContinuousBatcher engine(s, model, cache, fc.serve);
  return engine.serve(reqs);
}

// ---------------------------------------------------------------------------
// 1. Token-exact failover
// ---------------------------------------------------------------------------

TEST(FleetTest, KillOneOfThreeMidDecodeIsTokenExact) {
  // Execute mode, FP32, greedy: tokens are a pure function of (params,
  // prompt), and a continuation prefill rebuilds the KV bitwise — the
  // property that makes re-dispatch invisible in the output.
  const auto reqs = infer::poisson_requests(12, /*rate=*/50000.0, 3, 7, 5, 10,
                                            fleet_gpt2().vocab, 83);
  infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kExecute, DType::kF32);
  const infer::ServeReport base = single_replica_baseline(fc, reqs);
  ASSERT_EQ(base.served, static_cast<int64_t>(reqs.size()));

  // Replica 1 dies at its third decode step, mid-burst, residents and all.
  fc.fault_plans.resize(3);
  fc.fault_plans[1].add(FaultPlan::device_loss(/*step=*/2, /*rank=*/0));
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);

  EXPECT_EQ(rep.deaths, 1);
  EXPECT_EQ(fleet.live_replicas(), 2);
  EXPECT_GE(rep.redispatches, 1) << "the dead replica's residents must move";
  EXPECT_EQ(rep.lost, 0);
  EXPECT_EQ(rep.shed, 0);
  ASSERT_EQ(rep.served, static_cast<int64_t>(reqs.size()));

  for (const infer::RequestStats& st : rep.requests) {
    const infer::RequestStats* ref = nullptr;
    for (const infer::RequestStats& b : base.requests)
      if (b.id == st.id) ref = &b;
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(st.tokens, ref->tokens)
        << "request " << st.id << " must be token-identical to the unfaulted run";
  }
}

TEST(FleetTest, RedispatchedLatencyRunsFromOriginalArrival) {
  const auto reqs = infer::poisson_requests(12, /*rate=*/50000.0, 3, 7, 5, 10,
                                            fleet_gpt2().vocab, 83);
  infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kModelOnly);
  fc.fault_plans.resize(3);
  fc.fault_plans[1].add(FaultPlan::device_loss(2, 0));
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);
  ASSERT_EQ(rep.deaths, 1);
  for (size_t i = 0; i < rep.requests.size(); ++i) {
    const infer::RequestStats& st = rep.requests[i];
    EXPECT_DOUBLE_EQ(st.arrival_us, reqs[static_cast<size_t>(st.id)].arrival_us)
        << "re-dispatch must not rewrite the arrival time";
    EXPECT_GT(st.done_us, st.arrival_us);
  }
}

// ---------------------------------------------------------------------------
// 2. Rolling reload
// ---------------------------------------------------------------------------

TEST(FleetTest, RollingReloadDropsNothing) {
  const auto reqs = infer::poisson_requests(48, /*rate=*/12000.0, 4, 8, 8, 24,
                                            fleet_gpt2().vocab, 19);
  infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kModelOnly);
  // Trigger the roll while the fleet is mid-burst.
  fc.reload_at_us = reqs[reqs.size() / 3].arrival_us;
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);

  EXPECT_EQ(rep.reloads, 3) << "every replica must have been rolled";
  EXPECT_EQ(rep.deaths, 0);
  EXPECT_EQ(rep.lost, 0);
  EXPECT_EQ(rep.shed, 0);
  EXPECT_EQ(rep.served, static_cast<int64_t>(reqs.size()));
}

TEST(FleetTest, ParamSnapshotRestoresBitwiseIntoADifferentWorld) {
  const models::Gpt2Config mc = fleet_gpt2();
  SessionConfig sc;
  sc.dtype = DType::kF32;
  Session a(sc);
  models::Gpt2 model_a(mc, System::kLightSeq2, sc.dtype, /*seed=*/7, a.param_alloc());
  const core::CheckpointSnapshot snap =
      core::AsyncCheckpointer::snapshot_params(a, model_a.params());
  ASSERT_TRUE(snap.valid());
  ASSERT_GT(snap.ready_us, 0) << "the host drain is never free";

  Session b(sc);
  models::Gpt2 model_b(mc, System::kLightSeq2, sc.dtype, /*seed=*/99, b.param_alloc());
  core::AsyncCheckpointer::restore_params(snap, b, model_b.params());

  auto bytes = [](const layers::ParamRegistry& params) {
    std::vector<unsigned char> out;
    params.for_each([&](const std::string&, Tensor v, Tensor) {
      if (!v.defined() || !v.backs_real_memory()) return;
      const unsigned char* p = static_cast<const unsigned char*>(v.raw());
      out.insert(out.end(), p, p + v.bytes());
    });
    return out;
  };
  EXPECT_EQ(bytes(model_a.params()), bytes(model_b.params()))
      << "restore_params must be bitwise";
}

// ---------------------------------------------------------------------------
// 3. Dispatch policies & hedging
// ---------------------------------------------------------------------------

TEST(FleetTest, PoliciesServeEverythingAndSpreadLoad) {
  const auto reqs = infer::poisson_requests(36, /*rate=*/15000.0, 4, 8, 6, 16,
                                            fleet_gpt2().vocab, 43);
  for (const auto policy : {infer::DispatchPolicy::kRoundRobin,
                            infer::DispatchPolicy::kJoinShortestQueue}) {
    infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kModelOnly);
    fc.policy = policy;
    infer::Fleet fleet(fc);
    const infer::FleetReport rep = fleet.run(reqs);
    EXPECT_EQ(rep.served, static_cast<int64_t>(reqs.size()));
    EXPECT_EQ(rep.lost, 0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GT(rep.replica_reports[static_cast<size_t>(i)].prefills, 0)
          << "replica " << i << " must get a share of the burst";
    }
  }
}

TEST(FleetTest, HedgingCutsTheTailUnderAStragglerReplica) {
  // A model big enough that decode EXEC time dominates launch overhead —
  // otherwise a kernel-spike "straggler" barely slows its replica and there
  // is no tail to rescue. Model-only mode, so size is free.
  models::Gpt2Config mc = fleet_gpt2();
  mc.hidden = 256;
  mc.ffn_dim = 1024;
  mc.layers = 6;
  const auto reqs = infer::poisson_requests(48, /*rate=*/4000.0, 4, 8, 8, 20,
                                            mc.vocab, 71);
  // Replica 0 straggles (every kernel 30x) for its first 2000 decode steps.
  auto make = [&](infer::DispatchPolicy policy) {
    infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kModelOnly);
    fc.model = mc;
    fc.policy = policy;
    // Floor near the healthy median: only genuinely stuck requests hedge,
    // so the duplicates rescue the tail without inflating the median.
    fc.hedge_min_us = 12000.0;
    fc.fault_plans.resize(3);
    fc.fault_plans[0].kernel_spike_window(0, 2000, /*site=*/"", /*factor=*/30.0);
    return fc;
  };
  infer::Fleet jsq(make(infer::DispatchPolicy::kJoinShortestQueue));
  const infer::FleetReport r_jsq = jsq.run(reqs);
  infer::Fleet hedged(make(infer::DispatchPolicy::kHedged));
  const infer::FleetReport r_hedged = hedged.run(reqs);

  ASSERT_EQ(r_jsq.served, static_cast<int64_t>(reqs.size()));
  ASSERT_EQ(r_hedged.served, static_cast<int64_t>(reqs.size()));
  EXPECT_GT(r_hedged.hedges_fired, 0) << "the straggler must trip the hedge";
  EXPECT_GT(r_hedged.hedge_wins, 0)
      << "some duplicate dispatched to a healthy replica must finish first";
  EXPECT_LT(r_hedged.p99_latency_us, r_jsq.p99_latency_us)
      << "hedging exists to rescue the tail";
  EXPECT_LE(r_hedged.p50_latency_us, r_jsq.p50_latency_us * 1.05)
      << "a well-floored hedge must not buy the tail with the median";
}

TEST(FleetTest, HedgeLosersAreCancelledNotDoubleCounted) {
  const auto reqs = infer::poisson_requests(24, /*rate=*/9000.0, 4, 8, 8, 20,
                                            fleet_gpt2().vocab, 57);
  infer::FleetConfig fc = fleet_config(3, simgpu::ExecMode::kModelOnly);
  fc.policy = infer::DispatchPolicy::kHedged;
  fc.fault_plans.resize(3);
  fc.fault_plans[0].kernel_spike_window(0, 400, "", 30.0);
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);
  // Every original request resolves exactly once at the router, regardless
  // of how many copies ran.
  EXPECT_EQ(rep.served + rep.shed, static_cast<int64_t>(reqs.size()));
  EXPECT_EQ(rep.lost, 0);
  EXPECT_EQ(static_cast<int64_t>(rep.requests.size()),
            static_cast<int64_t>(reqs.size()));
}

// ---------------------------------------------------------------------------
// 4. Honest stats under re-dispatch (engine-level satellite)
// ---------------------------------------------------------------------------

TEST(DegradedServingTest, EnqueueTimeGovernsTimeoutButArrivalGovernsStats) {
  const models::Gpt2Config mc = fleet_gpt2();
  const int64_t slots = 4, max_len = 144;
  SessionConfig sc;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.arena_bytes = infer::serve_capacity_scan(mc, sc.dtype, slots, max_len, 8);
  Session s(sc);
  models::Gpt2 model(mc, System::kLightSeq2, sc.dtype, 31, s.param_alloc());
  infer::KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  infer::ServeConfig scfg;
  scfg.admission_timeout_us = 1000.0;  // far shorter than the re-dispatch delay
  infer::ContinuousBatcher engine(s, model, cache, scfg);

  // A request that ARRIVED at t=0 but was handed to this engine at t=5000
  // (a router re-dispatch). The admission timeout must key off the hand-over
  // time — otherwise every re-dispatch would be insta-shed — while queue
  // wait and latency keep the original arrival.
  infer::Request r;
  r.id = 0;
  r.prompt = {5, 6, 7};
  r.spec.gen_len = 4;
  r.arrival_us = 0;
  r.enqueue_us = 5000.0;
  const infer::ServeReport rep = engine.serve({r});
  ASSERT_EQ(rep.served, 1);
  ASSERT_EQ(rep.shed_requests, 0) << "a fresh hand-over must not be timeout-shed";
  const infer::RequestStats& st = rep.requests[0];
  EXPECT_GE(st.admitted_us, 5000.0);
  EXPECT_GE(st.queue_us(), 5000.0)
      << "queue wait must include the time since the ORIGINAL arrival";
  EXPECT_GE(st.latency_us(), 5000.0);
}

// ---------------------------------------------------------------------------
// 5. Shedding edge cases
// ---------------------------------------------------------------------------

std::vector<infer::Request> burst_of(int64_t n, int64_t gen_len = 6) {
  std::vector<infer::Request> reqs;
  for (int64_t i = 0; i < n; ++i) {
    infer::Request r;
    r.id = i;
    r.prompt = {3, 4, 5, 6};
    r.spec.gen_len = gen_len;
    r.arrival_us = 0;  // all at once
    reqs.push_back(std::move(r));
  }
  return reqs;
}

infer::ServeReport run_fleet_burst(const infer::ServeConfig& scfg,
                                   const std::vector<infer::Request>& reqs) {
  const models::Gpt2Config mc = fleet_gpt2();
  const int64_t slots = 4, max_len = 144;
  SessionConfig sc;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.arena_bytes = infer::serve_capacity_scan(mc, sc.dtype, slots, max_len, 8);
  Session s(sc);
  models::Gpt2 model(mc, System::kLightSeq2, sc.dtype, 31, s.param_alloc());
  infer::KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  infer::ContinuousBatcher engine(s, model, cache, scfg);
  return engine.serve(reqs);
}

TEST(FleetTest, PrefixSharingFleetIsTokenExactToExclusivePages) {
  // Every burst request carries the same 4-token prompt; with 4-token pages
  // that prompt is exactly one full page, so a sharing fleet serves the whole
  // burst off one physical prefix page per replica. Sharing is a memory-layout
  // choice, never a numerics choice: the merged token streams must be bitwise
  // the exclusive-pages baseline.
  const auto reqs = burst_of(12, /*gen_len=*/5);
  infer::FleetConfig fc = fleet_config(2, simgpu::ExecMode::kExecute, DType::kF32);
  const infer::ServeReport base = single_replica_baseline(fc, reqs);
  ASSERT_EQ(base.served, 12);
  ASSERT_EQ(base.shared_page_hits, 0) << "the baseline must not share";

  fc.page_tokens = 4;
  fc.prefix_sharing = true;
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);
  EXPECT_EQ(rep.lost, 0);
  EXPECT_EQ(rep.shed, 0);
  ASSERT_EQ(rep.served, 12);
  int64_t hits = 0;
  for (const infer::ServeReport& r : rep.replica_reports) hits += r.shared_page_hits;
  EXPECT_GT(hits, 0) << "the common prompt page must actually be shared";
  for (const infer::RequestStats& st : rep.requests) {
    const infer::RequestStats* ref = nullptr;
    for (const infer::RequestStats& b : base.requests)
      if (b.id == st.id) ref = &b;
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(st.tokens, ref->tokens)
        << "request " << st.id << " must be token-identical without sharing";
  }
}

TEST(DegradedServingTest, QueueExactlyAtBoundIsNotShed) {
  infer::ServeConfig scfg;
  scfg.max_queue = 6;
  // 4 slots fill, leaving EXACTLY max_queue waiting: the bound is "more
  // than", so nothing sheds...
  const infer::ServeReport at = run_fleet_burst(scfg, burst_of(4 + 6));
  EXPECT_EQ(at.shed_requests, 0);
  EXPECT_EQ(at.served, 10);
  // ...and one past the bound sheds exactly that one (the newest arrival).
  const infer::ServeReport over = run_fleet_burst(scfg, burst_of(4 + 6 + 1));
  EXPECT_EQ(over.shed_requests, 1);
  EXPECT_EQ(over.served, 10);
  bool newest_shed = false;
  for (const infer::RequestStats& st : over.requests)
    if (st.id == 10 && st.shed) newest_shed = true;
  EXPECT_TRUE(newest_shed) << "backpressure rejects the NEWEST arrival";
}

TEST(DegradedServingTest, DeadlineAtAdmissionStillShipsOneToken) {
  infer::ServeConfig scfg;
  scfg.deadline_us = 1e-9;  // expires the moment anything is admitted
  const infer::ServeReport rep = run_fleet_burst(scfg, burst_of(4, /*gen_len=*/8));
  EXPECT_EQ(rep.shed_requests, 0);
  EXPECT_EQ(rep.served, 4);
  for (const infer::RequestStats& st : rep.requests) {
    EXPECT_TRUE(st.deadline_retired);
    EXPECT_GE(st.generated, 1)
        << "a deadline that lands at admission must still ship the partial "
           "answer, never an empty one";
    EXPECT_LT(st.generated, 8);
  }
}

TEST(DegradedServingTest, ShedAndDeadlineComposeUnderABurst) {
  infer::ServeConfig scfg;
  scfg.max_queue = 4;
  scfg.deadline_us = 1500.0;
  const auto reqs = burst_of(16, /*gen_len=*/12);
  const infer::ServeReport rep = run_fleet_burst(scfg, reqs);
  EXPECT_EQ(rep.served + rep.shed_requests, 16);
  EXPECT_GT(rep.shed_requests, 0);
  EXPECT_GT(rep.served, 0);
  for (const infer::RequestStats& st : rep.requests) {
    if (st.shed) {
      EXPECT_TRUE(st.tokens.empty()) << "shed requests never decode";
      EXPECT_FALSE(st.deadline_retired)
          << "shed and deadline-retired are mutually exclusive outcomes";
    } else if (st.deadline_retired) {
      EXPECT_GE(st.generated, 1);
      EXPECT_LT(st.generated, 12);
    }
  }
}

// ---------------------------------------------------------------------------
// 6. Heartbeat liveness (SessionConfig-driven intervals)
// ---------------------------------------------------------------------------

TEST(HeartbeatMonitorTest, FromMillisRoundsUpAndValidates) {
  const dist::HeartbeatConfig hc = dist::HeartbeatConfig::from_millis(4, 0.4, 0.9);
  EXPECT_EQ(hc.ranks, 4);
  EXPECT_GE(hc.interval.count(), 1) << "sub-millisecond knobs must not degenerate";
  EXPECT_GE(hc.timeout.count(), 1);
  EXPECT_THROW(dist::HeartbeatConfig::from_millis(2, 10.0, 5.0), Error)
      << "a timeout shorter than the scan interval suspects every rank";
}

TEST(HeartbeatMonitorTest, SlowButAliveRankIsNeverEvicted) {
  // The SessionConfig default shape: timeout is a multiple of any plausible
  // beat cadence. A rank beating at 1/5th the watcher rate is SLOW but
  // alive — it must never be suspected; only the silent rank is.
  dist::HeartbeatMonitor mon(dist::HeartbeatConfig::from_millis(2, 2.0, 60.0));
  std::atomic<bool> slow_rank_suspected{false};
  mon.on_suspect([&](int rank) {
    if (rank == 0) slow_rank_suspected.store(true);
  });
  mon.start();
  mon.beat(1);  // rank 1 beats once, then goes silent

  std::atomic<bool> stop{false};
  std::thread slow([&] {
    while (!stop.load()) {
      mon.beat(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));  // slow beat
    }
  });

  // Wait until the watcher notices the SILENT rank (bounded, not timed).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool suspected_silent = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::vector<int> s = mon.suspected();
    if (std::find(s.begin(), s.end(), 1) != s.end()) {
      suspected_silent = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  slow.join();
  mon.stop();

  EXPECT_TRUE(suspected_silent) << "the silent rank must be noticed";
  EXPECT_FALSE(slow_rank_suspected.load())
      << "a slow-but-alive rank must never be falsely evicted";
}

}  // namespace
}  // namespace ls2
