#include "kernels/layernorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class LayerNormTest : public ::testing::Test {
 protected:
  LayerNormTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}

  Tensor randn(Shape shape, uint64_t stream, float stddev = 1.0f) {
    Tensor t = Tensor::empty(std::move(shape), DType::kF32);
    kc.rng.fill_normal(t, 2000 + stream, 0.0f, stddev);
    return t;
  }

  // Textbook two-pass reference.
  static void reference_ln(const std::vector<float>& x, const std::vector<float>& g,
                           const std::vector<float>& b, int64_t rows, int64_t cols,
                           std::vector<float>& y) {
    y.resize(x.size());
    for (int64_t r = 0; r < rows; ++r) {
      double mu = 0;
      for (int64_t j = 0; j < cols; ++j) mu += x[r * cols + j];
      mu /= cols;
      double var = 0;
      for (int64_t j = 0; j < cols; ++j) {
        const double d = x[r * cols + j] - mu;
        var += d * d;
      }
      var /= cols;
      const double rstd = 1.0 / std::sqrt(var + 1e-5);
      for (int64_t j = 0; j < cols; ++j)
        y[r * cols + j] = static_cast<float>((x[r * cols + j] - mu) * rstd * g[j] + b[j]);
    }
  }

  simgpu::Device dev;
  KernelContext kc;
};

TEST_F(LayerNormTest, ForwardMatchesTwoPassReference) {
  const int64_t rows = 64, cols = 128;
  Tensor x = randn({rows, cols}, 1, 3.0f);
  Tensor gamma = randn({cols}, 2);
  Tensor beta = randn({cols}, 3);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);
  layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, mean, rstd);

  std::vector<float> expect;
  reference_ln(x.to_vector(), gamma.to_vector(), beta.to_vector(), rows, cols, expect);
  const auto yv = y.to_vector();
  for (size_t i = 0; i < expect.size(); ++i) EXPECT_NEAR(yv[i], expect[i], 2e-4f) << i;
}

TEST_F(LayerNormTest, SinglePassStatsStableWithLargeMean) {
  // sigma^2 = E[x^2]-E[x]^2 is cancellation-prone; f64 accumulation must
  // keep it accurate when mean >> stddev.
  const int64_t rows = 8, cols = 512;
  Tensor x = randn({rows, cols}, 1, 0.1f);
  {
    auto v = x.to_vector();
    for (float& f : v) f += 100.0f;
    x.copy_from(v);
  }
  Tensor gamma = Tensor::empty({cols}, DType::kF32);
  gamma.fill_(1.0f);
  Tensor beta = Tensor::zeros({cols}, DType::kF32);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);
  layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, mean, rstd);
  // Output must be standardised: mean ~ 0, var ~ 1 per row.
  const auto yv = y.to_vector();
  for (int64_t r = 0; r < rows; ++r) {
    double m = 0, v2 = 0;
    for (int64_t j = 0; j < cols; ++j) m += yv[r * cols + j];
    m /= cols;
    for (int64_t j = 0; j < cols; ++j) {
      const double d = yv[r * cols + j] - m;
      v2 += d * d;
    }
    v2 /= cols;
    EXPECT_NEAR(m, 0.0, 1e-3);
    EXPECT_NEAR(v2, 1.0, 1e-2);
  }
}

TEST_F(LayerNormTest, AllImplsNumericallyIdentical) {
  const int64_t rows = 32, cols = 64;
  Tensor x = randn({rows, cols}, 1);
  Tensor gamma = randn({cols}, 2);
  Tensor beta = randn({cols}, 3);
  std::vector<float> first;
  for (Impl impl : {Impl::kTorch, Impl::kTensorFlow, Impl::kDeepSpeed, Impl::kLS2}) {
    Tensor y = Tensor::empty({rows, cols}, DType::kF32);
    Tensor mean = Tensor::empty({rows}, DType::kF32);
    Tensor rstd = Tensor::empty({rows}, DType::kF32);
    layernorm_fw(kc, impl, x, gamma, beta, y, mean, rstd);
    if (first.empty()) {
      first = y.to_vector();
    } else {
      EXPECT_EQ(y.to_vector(), first) << impl_name(impl);
    }
  }
}

TEST_F(LayerNormTest, BackwardMatchesFiniteDifference) {
  const int64_t rows = 4, cols = 16;
  Tensor x = randn({rows, cols}, 1);
  Tensor gamma = randn({cols}, 2);
  Tensor beta = randn({cols}, 3);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);
  layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, mean, rstd);

  Tensor dy = randn({rows, cols}, 4);
  Tensor dx = Tensor::empty({rows, cols}, DType::kF32);
  // Param-grad kernels accumulate into their destination (microbatch
  // gradient accumulation), so grad outputs start zeroed.
  Tensor dgamma = Tensor::zeros({cols}, DType::kF32);
  Tensor dbeta = Tensor::zeros({cols}, DType::kF32);
  layernorm_bw(kc, Impl::kLS2, dy, x, gamma, mean, rstd, dx, dgamma, dbeta);

  // Scalar objective: sum(dy * LN(x)).
  auto objective = [&](const std::vector<float>& xv) {
    std::vector<float> yv;
    reference_ln(xv, gamma.to_vector(), beta.to_vector(), rows, cols, yv);
    const auto dyv = dy.to_vector();
    double s = 0;
    for (size_t i = 0; i < yv.size(); ++i) s += static_cast<double>(dyv[i]) * yv[i];
    return s;
  };
  const float h = 1e-3f;
  auto xv = x.to_vector();
  const auto dxv = dx.to_vector();
  for (int64_t i = 0; i < rows * cols; i += 7) {  // sample positions
    auto xp = xv, xm = xv;
    xp[static_cast<size_t>(i)] += h;
    xm[static_cast<size_t>(i)] -= h;
    const double numeric = (objective(xp) - objective(xm)) / (2 * h);
    EXPECT_NEAR(dxv[static_cast<size_t>(i)], numeric, 5e-3) << "i=" << i;
  }

  // Parameter grads against direct formulas.
  const auto dyv = dy.to_vector();
  const auto xvv = x.to_vector();
  const auto mv = mean.to_vector();
  const auto rv = rstd.to_vector();
  const auto dgv = dgamma.to_vector();
  const auto dbv = dbeta.to_vector();
  for (int64_t j = 0; j < cols; ++j) {
    double dg = 0, db = 0;
    for (int64_t r = 0; r < rows; ++r) {
      const double xhat = (xvv[r * cols + j] - mv[r]) * rv[r];
      dg += dyv[r * cols + j] * xhat;
      db += dyv[r * cols + j];
    }
    EXPECT_NEAR(dgv[j], dg, 1e-3) << j;
    EXPECT_NEAR(dbv[j], db, 1e-3) << j;
  }
}

TEST_F(LayerNormTest, BackwardImplsAgree) {
  const int64_t rows = 16, cols = 32;
  Tensor x = randn({rows, cols}, 1);
  Tensor gamma = randn({cols}, 2);
  Tensor beta = randn({cols}, 3);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);
  layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, mean, rstd);
  Tensor dy = randn({rows, cols}, 4);

  std::vector<float> dx_first, dg_first;
  for (Impl impl : {Impl::kTorch, Impl::kLS2}) {
    Tensor dx = Tensor::empty({rows, cols}, DType::kF32);
    Tensor dg = Tensor::zeros({cols}, DType::kF32);
    Tensor db = Tensor::zeros({cols}, DType::kF32);
    layernorm_bw(kc, impl, dy, x, gamma, mean, rstd, dx, dg, db);
    if (dx_first.empty()) {
      dx_first = dx.to_vector();
      dg_first = dg.to_vector();
    } else {
      EXPECT_EQ(dx.to_vector(), dx_first);
      EXPECT_EQ(dg.to_vector(), dg_first);
    }
  }
}

TEST_F(LayerNormTest, LaunchCounts) {
  const int64_t rows = 256, cols = 1024;
  Tensor x = randn({rows, cols}, 1);
  Tensor gamma = randn({cols}, 2);
  Tensor beta = randn({cols}, 3);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mean = Tensor::empty({rows}, DType::kF32);
  Tensor rstd = Tensor::empty({rows}, DType::kF32);

  dev.reset();
  layernorm_fw(kc, Impl::kTorch, x, gamma, beta, y, mean, rstd);
  EXPECT_EQ(dev.stats().launches, 3);

  dev.reset();
  layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, mean, rstd);
  EXPECT_EQ(dev.stats().launches, 1);
}

// Fig. 16's qualitative shape: LightSeq2 ~4x over the PyTorch decomposition
// across sizes; DeepSpeed competitive at small sizes but collapsing at large
// ones (below PyTorch).
TEST_F(LayerNormTest, ModeledSpeedupShapes) {
  simgpu::Device mdev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  KernelContext mkc(mdev, nullptr, 0);
  auto time_of = [&](Impl impl, int64_t rows, int64_t cols) {
    Tensor x = Tensor::empty({rows, cols}, DType::kF16);
    Tensor g = Tensor::empty({cols}, DType::kF16);
    Tensor b = Tensor::empty({cols}, DType::kF16);
    Tensor y = Tensor::empty({rows, cols}, DType::kF16);
    Tensor mean = Tensor::empty({rows}, DType::kF32);
    Tensor rstd = Tensor::empty({rows}, DType::kF32);
    mdev.reset();
    layernorm_fw(mkc, impl, x, g, b, y, mean, rstd);
    return mdev.clock_us();
  };

  // Small and large shapes from Fig. 16's grid.
  for (auto [rows, cols] : {std::pair<int64_t, int64_t>{512, 256},
                            {4096, 1024},
                            {8192, 8192}}) {
    const double torch_t = time_of(Impl::kTorch, rows, cols);
    const double ls2_t = time_of(Impl::kLS2, rows, cols);
    EXPECT_GT(torch_t / ls2_t, 2.5) << rows << "x" << cols;
    EXPECT_LT(torch_t / ls2_t, 8.0) << rows << "x" << cols;
  }
  // DeepSpeed beats PyTorch at small shapes, loses at very large ones.
  EXPECT_LT(time_of(Impl::kDeepSpeed, 512, 256), time_of(Impl::kTorch, 512, 256));
  EXPECT_GT(time_of(Impl::kDeepSpeed, 8192, 8192), time_of(Impl::kTorch, 8192, 8192));
}

TEST_F(LayerNormTest, ShapeValidation) {
  Tensor x = randn({4, 8}, 1);
  Tensor gamma = randn({8}, 2);
  Tensor beta = randn({8}, 3);
  Tensor y = Tensor::empty({4, 8}, DType::kF32);
  Tensor mean = Tensor::empty({4}, DType::kF32);
  Tensor rstd = Tensor::empty({4}, DType::kF32);
  Tensor bad_gamma = randn({7}, 4);
  EXPECT_THROW(layernorm_fw(kc, Impl::kLS2, x, bad_gamma, beta, y, mean, rstd), Error);
  Tensor bad_stats = Tensor::empty({4}, DType::kF16);
  EXPECT_THROW(layernorm_fw(kc, Impl::kLS2, x, gamma, beta, y, bad_stats, rstd), Error);
}

}  // namespace
}  // namespace ls2::kern
