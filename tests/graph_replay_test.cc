// Step-graph capture & replay (SessionConfig::graph_capture).
//
// The contract, in order of importance:
//  1. Replay NEVER changes numerics: a graph-enabled session produces
//     bitwise the losses, parameters, and dropout masks of an eager twin —
//     across all four models, all three trainers, FP32 and FP16. The
//     per-step RNG offset (KernelContext::begin_step_rng) is what makes
//     masks a pure function of (seed, step, site) under replay.
//  2. Replay changes the cost model: the captured region pays one
//     graph-launch overhead instead of a per-kernel gap, which is worth
//     >= 20% of the step at a launch-bound configuration.
//  3. Capture safety is enforced: the caching allocator's device-malloc
//     stalls poison capture with a diagnostic and the session falls back to
//     eager — it never replays a graph whose addresses could dangle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lightseq2.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using core::StepTimes;
using layers::System;

float loss_of(const layers::CriterionResult& r) { return r.loss_sum; }
float loss_of(const models::ClsResult& r) { return r.loss; }
float loss_of(const models::ClsResultVit& r) { return r.loss; }

std::vector<float> param_values(layers::ParamRegistry& reg) {
  std::vector<float> all;
  reg.for_each([&](const std::string&, Tensor v, Tensor) {
    const auto vec = v.to_vector();
    all.insert(all.end(), vec.begin(), vec.end());
  });
  return all;
}

enum class Trainer { kTorch, kApex, kLS2 };
const char* trainer_name(Trainer t) {
  return t == Trainer::kTorch ? "torch" : t == Trainer::kApex ? "apex" : "lightseq2";
}

/// Arena sizing via the shared core::capacity_scan probe, with generous
/// headroom (2x peak + 1 MB) — these sessions run many execute-mode steps
/// and the test must never OOM for sizing reasons.
template <typename MakeModel, typename Batch>
size_t probe_arena(MakeModel make_model, const Batch& batch, DType dt) {
  core::CapacityScanOptions opt;
  opt.seed = 11;
  opt.headroom = 1.0;
  return core::capacity_scan(
             [&](BufferAllocator* alloc) { return make_model(dt, alloc); }, batch, opt) +
         (1u << 20);
}

struct StepRun {
  std::vector<float> losses;
  std::vector<bool> replayed;
  std::vector<float> params;
  bool poisoned = false;
};

template <typename MakeModel, typename Batch>
StepRun run_steps(MakeModel make_model, const Batch& batch, Trainer which, DType dt,
              bool graph, int steps, size_t arena_bytes) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = dt;
  sc.arena_bytes = arena_bytes;
  sc.graph_capture = graph;
  Session session(sc);
  auto model = make_model(dt, session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;
  std::unique_ptr<optim::Optimizer> trainer;
  switch (which) {
    case Trainer::kTorch:
      trainer = std::make_unique<optim::TorchTrainer>(model->params(), ocfg);
      break;
    case Trainer::kApex:
      trainer = std::make_unique<optim::ApexTrainer>(model->params(), ocfg);
      break;
    case Trainer::kLS2:
      trainer = std::make_unique<optim::LightSeq2Trainer>(model->params(), ocfg);
      break;
  }
  StepRun run;
  for (int i = 0; i < steps; ++i) {
    auto [times, res] = core::train_step(session, *model, batch, *trainer);
    run.losses.push_back(loss_of(res));
    run.replayed.push_back(times.replayed);
  }
  run.params = param_values(model->params());
  run.poisoned = session.graph_poisoned();
  return run;
}

/// The bitwise eager-vs-replay property for one model family. `batch_for`
/// builds the batch for a given model dtype (only ViT's patch tensor is
/// dtype-sensitive; token batches are i32 throughout).
template <typename MakeModel, typename BatchFor>
void expect_replay_bitwise(const char* family, MakeModel make_model, BatchFor batch_for) {
  constexpr int kSteps = 5;
  for (Trainer which : {Trainer::kTorch, Trainer::kApex, Trainer::kLS2}) {
    for (DType dt : {DType::kF32, DType::kF16}) {
      const auto batch = batch_for(dt);
      const size_t arena = probe_arena(make_model, batch, dt);
      const StepRun eager = run_steps(make_model, batch, which, dt, false, kSteps, arena);
      const StepRun replay = run_steps(make_model, batch, which, dt, true, kSteps, arena);
      SCOPED_TRACE(std::string(family) + " / " + trainer_name(which) + " / " +
                   dtype_name(dt));
      ASSERT_FALSE(replay.poisoned);
      // Warm-up step 0 eager, step 1 captured-while-executing, 2+ replayed.
      EXPECT_FALSE(replay.replayed[0]);
      EXPECT_FALSE(replay.replayed[1]);
      for (int i = 2; i < kSteps; ++i) EXPECT_TRUE(replay.replayed[i]) << "step " << i;
      for (int i = 0; i < kSteps; ++i) EXPECT_FALSE(eager.replayed[i]);
      // Losses bitwise identical per step (dropout masks included — a mask
      // divergence would change the loss immediately).
      for (int i = 0; i < kSteps; ++i) {
        ASSERT_EQ(eager.losses[i], replay.losses[i]) << "loss at step " << i;
      }
      // Parameters bitwise identical after all updates.
      ASSERT_EQ(eager.params.size(), replay.params.size());
      for (size_t i = 0; i < eager.params.size(); ++i) {
        ASSERT_EQ(eager.params[i], replay.params[i]) << "param element " << i;
      }
    }
  }
}

TEST(GraphReplayBitwise, Transformer) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 32;
  data::MtDataset ds(cfg.vocab, 16, 3, 9, 5);
  const auto batch = data::make_mt_batches(ds, 64, DType::kF32).front();
  expect_replay_bitwise("transformer", [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Transformer>(cfg, System::kLightSeq2, dt, 7, alloc);
  }, [&](DType) { return batch; });
}

TEST(GraphReplayBitwise, Bert) {
  models::BertConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 32;
  data::ClsDataset ds(cfg.vocab, 32, 12, 3);
  const auto batch = ds.batch(0, 4, 12);
  expect_replay_bitwise("bert", [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Bert>(cfg, System::kLightSeq2, dt, 7, alloc);
  }, [&](DType) { return batch; });
}

TEST(GraphReplayBitwise, Gpt2) {
  models::Gpt2Config cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.max_len = 32;
  data::LmDataset ds(cfg.vocab, 512, 3);
  const auto batch = ds.batch(0, 4, 12);
  expect_replay_bitwise("gpt2", [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Gpt2>(cfg, System::kLightSeq2, dt, 7, alloc);
  }, [&](DType) { return batch; });
}

TEST(GraphReplayBitwise, Vit) {
  models::VitConfig cfg;
  cfg.image = 64;
  cfg.patch = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.layers = 2;
  cfg.num_classes = 4;
  data::ImageDataset ds(cfg.num_classes, 32, 3);
  expect_replay_bitwise("vit", [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Vit>(cfg, System::kLightSeq2, dt, 7, alloc);
  }, [&](DType dt) { return ds.batch(0, 4, cfg, dt); });
}

// The perf claim: at a launch-bound configuration (deep model, small
// per-GPU batch) the replayed step is >= 20% faster than the eager step.
TEST(GraphReplaySpeedup, LaunchBoundConfigGainsAtLeast20Percent) {
  const auto cfg = models::TransformerConfig::base(12, 12);
  data::MtDataset ds(cfg.vocab, 64, 8, 24, 17);
  const auto batch = data::largest_batch(data::make_mt_batches(ds, 512, DType::kF16));

  auto make = [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Transformer>(cfg, System::kLightSeq2, dt, 17, alloc);
  };
  auto step_time = [&](bool graph) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.arena_bytes = probe_arena(make, batch, DType::kF16);
    sc.graph_capture = graph;
    Session session(sc);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 17,
                              session.param_alloc());
    optim::OptimConfig ocfg;
    optim::LightSeq2Trainer trainer(model.params(), ocfg, session.param_alloc());
    (void)core::train_step(session, model, batch, trainer);  // warm-up
    if (graph) {
      (void)core::train_step(session, model, batch, trainer);  // capture
      EXPECT_NE(session.step_graph(), nullptr) << session.graph_poison_reason();
    }
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, model, batch, trainer);
    EXPECT_EQ(times.replayed, graph);
    return session.device().clock_us() - t0;
  };

  const double eager_us = step_time(false);
  const double replay_us = step_time(true);
  EXPECT_LT(replay_us, eager_us * 0.80)
      << "eager " << eager_us << " us vs replay " << replay_us
      << " us — expected >= 20% improvement at a launch-bound config";
}

// Replay must not break stage accounting: the four stages still sum to the
// step total and the replayed region's time lands in the right ranges.
TEST(GraphReplaySpeedup, StageTimesStillSumUnderReplay) {
  const auto cfg = models::TransformerConfig::base(2, 2);
  data::MtDataset ds(cfg.vocab, 32, 8, 16, 9);
  const auto batch = data::largest_batch(data::make_mt_batches(ds, 256, DType::kF16));
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.arena_bytes = 256u << 20;
  sc.graph_capture = true;
  Session session(sc);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 17,
                            session.param_alloc());
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg, session.param_alloc());
  const dist::ClusterConfig cluster{4, 1};  // pipelined update composes
  for (int i = 0; i < 4; ++i) {
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, model, batch, trainer, cluster);
    const double wall = session.device().clock_us() - t0;
    EXPECT_NEAR(times.total_us(), wall, 1e-6) << "step " << i;
    EXPECT_EQ(times.replayed, i >= 2) << "step " << i;
  }
  // Replayed steps paid zero per-kernel launch gap and one graph launch.
  const auto& stats = session.device().stats();
  EXPECT_EQ(stats.graph_replays, 2);
  EXPECT_GT(stats.replayed_launches, 0);
  EXPECT_NEAR(stats.graph_launch_us,
              2 * session.device().profile().graph_launch_overhead_us, 1e-9);
}

// Capture safety: a session on the dynamic caching allocator (no arena)
// poisons capture at its first device-malloc stall, logs the reason, and
// keeps training eagerly with unchanged numerics.
TEST(GraphCaptureSafety, CachingAllocatorStallPoisonsCapture) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 32;
  data::MtDataset ds(cfg.vocab, 16, 3, 9, 5);
  const auto batch = data::make_mt_batches(ds, 64, DType::kF32).front();

  auto make = [&](DType dt, BufferAllocator* alloc) {
    return std::make_unique<models::Transformer>(cfg, System::kLightSeq2, dt, 7, alloc);
  };

  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.graph_capture = true;
  sc.graph_warmup_steps = 0;  // capture the FIRST step: the cache is cold
  Session session(sc);
  EXPECT_FALSE(session.graph_capture_supported());  // no arena
  auto model = make(DType::kF32, session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;  // match run_steps below
  optim::LightSeq2Trainer trainer(model->params(), ocfg);

  std::vector<float> losses;
  for (int i = 0; i < 3; ++i) {
    auto [times, res] = core::train_step(session, *model, batch, trainer);
    EXPECT_FALSE(times.replayed) << "step " << i;
    losses.push_back(res.loss_sum);
  }
  EXPECT_TRUE(session.graph_poisoned());
  EXPECT_EQ(session.step_graph(), nullptr);
  EXPECT_NE(session.graph_poison_reason().find("allocator stall"), std::string::npos)
      << session.graph_poison_reason();

  // Numerics are untouched by the failed capture: an eager arena session
  // yields bitwise the same losses.
  const size_t arena = probe_arena(make, batch, DType::kF32);
  const StepRun eager = run_steps(make, batch, Trainer::kLS2, DType::kF32, false, 3, arena);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(eager.losses[i], losses[i]) << "step " << i;
}

// The arena is the certified capture-safe strategy.
TEST(GraphCaptureSafety, ArenaSessionIsCaptureSafe) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.arena_bytes = 1u << 20;
  Session session(sc);
  EXPECT_TRUE(session.graph_capture_supported());
}

}  // namespace
}  // namespace ls2
