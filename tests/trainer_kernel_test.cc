#include "kernels/trainer_kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class TrainerKernelTest : public ::testing::Test {
 protected:
  TrainerKernelTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 7) {}

  Tensor randn(Shape shape, uint64_t stream, float sd = 0.1f, DType dt = DType::kF32) {
    Tensor t = Tensor::empty(std::move(shape), dt);
    kc.rng.fill_normal(t, 5000 + stream, 0.0f, sd);
    return t;
  }

  simgpu::Device dev;
  KernelContext kc;
};

// Reference Adam (direct transcription of the algorithm).
void ref_adam(std::vector<float>& p, const std::vector<float>& g, std::vector<float>& m,
              std::vector<float>& v, const AdamHyper& h) {
  const float bc1 = 1.0f - std::pow(h.beta1, static_cast<float>(h.step));
  const float bc2 = 1.0f - std::pow(h.beta2, static_cast<float>(h.step));
  for (size_t i = 0; i < p.size(); ++i) {
    m[i] = h.beta1 * m[i] + (1 - h.beta1) * g[i];
    v[i] = h.beta2 * v[i] + (1 - h.beta2) * g[i] * g[i];
    p[i] -= h.lr * ((m[i] / bc1) / (std::sqrt(v[i] / bc2) + h.eps) + h.weight_decay * p[i]);
  }
}

TEST_F(TrainerKernelTest, AdamMatchesReference) {
  const int64_t n = 1000;
  Tensor p = randn({n}, 1);
  Tensor g = randn({n}, 2);
  Tensor m = Tensor::zeros({n}, DType::kF32);
  Tensor v = Tensor::zeros({n}, DType::kF32);
  AdamHyper h;
  h.lr = 0.01f;
  h.weight_decay = 0.1f;

  auto pv = p.to_vector();
  auto gv = g.to_vector();
  std::vector<float> mv(n, 0.0f), vv(n, 0.0f);

  for (int step = 1; step <= 3; ++step) {
    h.step = step;
    adam_update(kc, TrainerImpl::kLS2, p, g, m, v, h, 1.0f);
    ref_adam(pv, gv, mv, vv, h);
  }
  const auto got = p.to_vector();
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], pv[i], 1e-6) << i;
}

TEST_F(TrainerKernelTest, AllImplsBitIdenticalOnF32) {
  const int64_t n = 512;
  AdamHyper h;
  h.step = 1;
  std::vector<std::vector<float>> results;
  for (TrainerImpl impl : {TrainerImpl::kTorch, TrainerImpl::kApex, TrainerImpl::kLS2}) {
    Tensor p = randn({n}, 1);
    Tensor g = randn({n}, 2);
    Tensor m = Tensor::zeros({n}, DType::kF32);
    Tensor v = Tensor::zeros({n}, DType::kF32);
    adam_update(kc, impl, p, g, m, v, h, 1.0f);
    results.push_back(p.to_vector());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST_F(TrainerKernelTest, Fp16WorkspaceTracksFp32Master) {
  // The paper's claim: updating FP16 parameters with on-the-fly conversion
  // does not change training behaviour. One step must agree with the FP32
  // path within FP16 resolution.
  const int64_t n = 2048;
  Tensor p32 = randn({n}, 1);
  Tensor g32 = randn({n}, 2);
  Tensor p16 = Tensor::from_vector(p32.to_vector(), {n}, DType::kF16);
  Tensor g16 = Tensor::from_vector(g32.to_vector(), {n}, DType::kF16);
  Tensor m1 = Tensor::zeros({n}, DType::kF32), v1 = Tensor::zeros({n}, DType::kF32);
  Tensor m2 = Tensor::zeros({n}, DType::kF32), v2 = Tensor::zeros({n}, DType::kF32);
  AdamHyper h;
  h.lr = 0.01f;
  adam_update(kc, TrainerImpl::kApex, p32, g32, m1, v1, h, 1.0f);
  adam_update(kc, TrainerImpl::kLS2, p16, g16, m2, v2, h, 1.0f);
  const auto a = p32.to_vector(), b = p16.to_vector();
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i], a[i], 1.5e-3f * (1.0f + std::abs(a[i]))) << i;
  }
}

TEST_F(TrainerKernelTest, GradScaleUnscalesLossScaling) {
  const int64_t n = 64;
  Tensor p1 = randn({n}, 1);
  Tensor p2 = Tensor::from_vector(p1.to_vector(), {n}, DType::kF32);
  Tensor g = randn({n}, 2);
  // Scaled gradients: g*1024 with grad_scale 1/1024 must equal plain g.
  auto gv = g.to_vector();
  for (float& f : gv) f *= 1024.0f;
  Tensor gs = Tensor::from_vector(gv, {n}, DType::kF32);
  Tensor m1 = Tensor::zeros({n}, DType::kF32), v1 = Tensor::zeros({n}, DType::kF32);
  Tensor m2 = Tensor::zeros({n}, DType::kF32), v2 = Tensor::zeros({n}, DType::kF32);
  AdamHyper h;
  adam_update(kc, TrainerImpl::kLS2, p1, g, m1, v1, h, 1.0f);
  adam_update(kc, TrainerImpl::kLS2, p2, gs, m2, v2, h, 1.0f / 1024.0f);
  const auto a = p1.to_vector(), b = p2.to_vector();
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);
}

TEST_F(TrainerKernelTest, ApexWritesFp16ModelCopy) {
  const int64_t n = 128;
  Tensor p32 = randn({n}, 1);
  Tensor g32 = randn({n}, 2);
  Tensor m = Tensor::zeros({n}, DType::kF32), v = Tensor::zeros({n}, DType::kF32);
  Tensor p16 = Tensor::zeros({n}, DType::kF16);
  AdamHyper h;
  adam_update(kc, TrainerImpl::kApex, p32, g32, m, v, h, 1.0f, &p16);
  const auto a = p32.to_vector(), b = p16.to_vector();
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i], a[i], 1e-3f * (1.0f + std::abs(a[i])));
  }
}

void ref_sgd(std::vector<float>& p, const std::vector<float>& g, std::vector<float>& mom,
             const SgdHyper& h) {
  for (size_t i = 0; i < p.size(); ++i) {
    const float gi = g[i] + h.weight_decay * p[i];
    mom[i] = h.momentum * mom[i] + gi;
    p[i] -= h.lr * mom[i];
  }
}

TEST_F(TrainerKernelTest, SgdMatchesReference) {
  const int64_t n = 777;
  Tensor p = randn({n}, 1);
  Tensor g = randn({n}, 2);
  Tensor mom = Tensor::zeros({n}, DType::kF32);
  SgdHyper h;
  h.lr = 0.05f;
  h.momentum = 0.9f;
  h.weight_decay = 0.01f;
  auto pv = p.to_vector();
  auto gv = g.to_vector();
  std::vector<float> mv(n, 0.0f);
  for (int step = 0; step < 3; ++step) {
    sgd_update(kc, TrainerImpl::kLS2, p, g, mom, h, 1.0f);
    ref_sgd(pv, gv, mv, h);
  }
  const auto got = p.to_vector();
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], pv[i], 1e-5f) << i;
}

TEST_F(TrainerKernelTest, OverflowDetection) {
  Tensor g = randn({100}, 1);
  Tensor flag = Tensor::empty({1}, DType::kF32);
  check_overflow(kc, g, flag);
  EXPECT_EQ(flag.item(), 0.0f);
  auto gv = g.to_vector();
  gv[50] = std::numeric_limits<float>::infinity();
  g.copy_from(gv);
  check_overflow(kc, g, flag);
  EXPECT_EQ(flag.item(), 1.0f);
  // Half inf as well.
  Tensor h = Tensor::zeros({8}, DType::kF16);
  h.data<Half>()[3] = Half::from_bits(0x7c00);  // +inf
  check_overflow(kc, h, flag);
  EXPECT_EQ(flag.item(), 1.0f);
}

TEST_F(TrainerKernelTest, StateDtypeEnforced) {
  Tensor p = randn({8}, 1, 0.1f, DType::kF16);
  Tensor g = randn({8}, 2, 0.1f, DType::kF16);
  Tensor bad_m = Tensor::zeros({8}, DType::kF16);
  Tensor v = Tensor::zeros({8}, DType::kF32);
  AdamHyper h;
  EXPECT_THROW(adam_update(kc, TrainerImpl::kLS2, p, g, bad_m, v, h, 1.0f), Error);
}

TEST_F(TrainerKernelTest, ModeledLs2FasterThanApexFasterThanTorch) {
  simgpu::Device mdev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  KernelContext mkc(mdev, nullptr, 0);
  const int64_t n = 1 << 22;
  Tensor p32 = Tensor::empty({n}, DType::kF32);
  Tensor g32 = Tensor::empty({n}, DType::kF32);
  Tensor p16 = Tensor::empty({n}, DType::kF16);
  Tensor g16 = Tensor::empty({n}, DType::kF16);
  Tensor m = Tensor::empty({n}, DType::kF32), v = Tensor::empty({n}, DType::kF32);
  AdamHyper h;
  mdev.reset();
  adam_update(mkc, TrainerImpl::kTorch, p32, g32, m, v, h, 1.0f);
  const double torch_t = mdev.clock_us();
  mdev.reset();
  adam_update(mkc, TrainerImpl::kApex, p32, g32, m, v, h, 1.0f);
  const double apex_t = mdev.clock_us();
  mdev.reset();
  adam_update(mkc, TrainerImpl::kLS2, p16, g16, m, v, h, 1.0f);
  const double ls2_t = mdev.clock_us();
  EXPECT_LT(ls2_t, apex_t);
  EXPECT_LT(apex_t, torch_t);
}

}  // namespace
}  // namespace ls2::kern
