#include "kernels/transform.h"

#include <gtest/gtest.h>

#include "kernels/elementwise.h"
#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  TransformTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}

  Tensor randn(Shape shape, uint64_t stream) {
    Tensor t = Tensor::empty(std::move(shape), DType::kF32);
    kc.rng.fill_normal(t, 4000 + stream, 0.0f, 1.0f);
    return t;
  }

  simgpu::Device dev;
  KernelContext kc;
};

TEST_F(TransformTest, QkvSplitLayout) {
  const int64_t B = 2, L = 3, N = 2, D = 4;
  const int64_t H = N * D;
  Tensor x = randn({B, L, 3 * H}, 1);
  Tensor bias = Tensor::zeros({3 * H}, DType::kF32);
  Tensor q = Tensor::empty({B, N, L, D}, DType::kF32);
  Tensor k = Tensor::empty({B, N, L, D}, DType::kF32);
  Tensor v = Tensor::empty({B, N, L, D}, DType::kF32);
  bias_split_transpose_fw(kc, Impl::kLS2, x, bias, {q, k, v});

  const auto xv = x.to_vector();
  const auto qv = q.to_vector(), kv = k.to_vector(), vv = v.to_vector();
  for (int64_t b = 0; b < B; ++b)
    for (int64_t l = 0; l < L; ++l)
      for (int64_t n = 0; n < N; ++n)
        for (int64_t d = 0; d < D; ++d) {
          const int64_t src = (b * L + l) * 3 * H;
          const int64_t dst = ((b * N + n) * L + l) * D + d;
          EXPECT_EQ(qv[dst], xv[src + 0 * H + n * D + d]);
          EXPECT_EQ(kv[dst], xv[src + 1 * H + n * D + d]);
          EXPECT_EQ(vv[dst], xv[src + 2 * H + n * D + d]);
        }
}

TEST_F(TransformTest, FusedBiasEqualsBaseline) {
  const int64_t B = 2, L = 5, N = 4, D = 8;
  const int64_t H = N * D;
  Tensor x = randn({B, L, 3 * H}, 1);
  Tensor x_copy = Tensor::empty({B, L, 3 * H}, DType::kF32);
  x_copy.copy_(x);
  Tensor bias = randn({3 * H}, 2);

  std::vector<Tensor> fused_outs, base_outs;
  for (int g = 0; g < 3; ++g) {
    fused_outs.push_back(Tensor::empty({B, N, L, D}, DType::kF32));
    base_outs.push_back(Tensor::empty({B, N, L, D}, DType::kF32));
  }
  bias_split_transpose_fw(kc, Impl::kLS2, x, bias, fused_outs);
  bias_split_transpose_fw(kc, Impl::kTorch, x_copy, bias, base_outs);
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(fused_outs[static_cast<size_t>(g)].to_vector(),
              base_outs[static_cast<size_t>(g)].to_vector())
        << "group " << g;
  }
}

TEST_F(TransformTest, SplitMergeRoundTrip) {
  const int64_t B = 2, L = 4, N = 3, D = 5;
  const int64_t H = N * D;
  Tensor x = randn({B, L, 2 * H}, 1);
  Tensor bias = Tensor::zeros({2 * H}, DType::kF32);
  Tensor a = Tensor::empty({B, N, L, D}, DType::kF32);
  Tensor b = Tensor::empty({B, N, L, D}, DType::kF32);
  bias_split_transpose_fw(kc, Impl::kLS2, x, bias, {a, b});
  Tensor back = Tensor::empty({B, L, 2 * H}, DType::kF32);
  split_transpose_bw(kc, Impl::kLS2, {a, b}, back);
  EXPECT_EQ(back.to_vector(), x.to_vector());
}

TEST_F(TransformTest, MergeHeadsRoundTrip) {
  const int64_t B = 2, L = 6, N = 2, D = 3;
  Tensor x = randn({B, N, L, D}, 1);
  Tensor y = Tensor::empty({B, L, N * D}, DType::kF32);
  merge_heads_fw(kc, Impl::kLS2, x, y);
  Tensor back = Tensor::empty({B, N, L, D}, DType::kF32);
  merge_heads_bw(kc, Impl::kLS2, y, back);
  EXPECT_EQ(back.to_vector(), x.to_vector());
}

TEST_F(TransformTest, LaunchCounts) {
  const int64_t B = 4, L = 16, N = 8, D = 32;
  const int64_t H = N * D;
  Tensor x = randn({B, L, 3 * H}, 1);
  Tensor bias = Tensor::zeros({3 * H}, DType::kF32);
  std::vector<Tensor> outs;
  for (int g = 0; g < 3; ++g) outs.push_back(Tensor::empty({B, N, L, D}, DType::kF32));

  dev.reset();
  bias_split_transpose_fw(kc, Impl::kLS2, x, bias, outs);
  EXPECT_EQ(dev.stats().launches, 1);

  dev.reset();
  bias_split_transpose_fw(kc, Impl::kTorch, x, bias, outs);
  EXPECT_EQ(dev.stats().launches, 4);  // bias + 3 transposes
}

TEST_F(TransformTest, ShapeMismatchThrows) {
  Tensor x = randn({2, 3, 12}, 1);
  Tensor bias = Tensor::zeros({12}, DType::kF32);
  Tensor bad = Tensor::empty({2, 2, 3, 2}, DType::kF32);  // wrong total elems
  EXPECT_THROW(bias_split_transpose_fw(kc, Impl::kLS2, x, bias, {bad}), Error);
}

}  // namespace
}  // namespace ls2::kern
