// Fault tolerance (DESIGN.md §10).
//
// The contract, in order of importance:
//  1. BITWISE ROLLBACK — a DP x PP training run that loses its rank mid-step
//     resumes from the latest USABLE async checkpoint and finishes with
//     bitwise the FP32 parameters of the fault-free run. Checkpoints are raw
//     byte blobs + the (seed, step, site) counter-RNG, so replay IS the
//     original trajectory.
//  2. ELASTIC SHRINK — losing a DP peer under the elastic policy re-forms
//     the ring over the survivors (no respawn wait), the gradient-average
//     denominator rescales to the surviving replica count, and the run
//     completes degraded.
//  3. DETECTION — a stragglered link is detected at the stragglered step's
//     own sync point (exposed wait > collective timeout); a silent rank is
//     suspected by the wall-clock heartbeat watcher (the real-thread
//     component the TSan CI lane runs).
//  4. DEGRADED SERVING — under a burst, load shedding + admission timeouts
//     bound p99 for the requests actually served; a transient allocation
//     failure inside the decode step is retried with backoff, token-exact.
//  5. TYPED ERRORS — injected allocator faults surface as
//     mem::TransientAllocFailure (an OutOfMemory, an ls2::Error), never as
//     an abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.h"
#include "core/fault_tolerant.h"
#include "core/lightseq2.h"
#include "dist/failure.h"
#include "infer/batcher.h"
#include "memory/arena_allocator.h"
#include "simgpu/fault.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;
using simgpu::FaultPlan;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

models::Gpt2Config small_gpt2() {
  models::Gpt2Config cfg;
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.layers = 4;  // >= PP degree: every stage owns at least one block
  cfg.max_len = 64;
  return cfg;
}

/// One training world per the run_fault_tolerant contract: session first
/// (destroyed last), deterministic model init from a fixed seed.
struct World {
  core::Session session;
  models::Gpt2 model;
  std::unique_ptr<optim::Optimizer> trainer;
  World(const SessionConfig& sc, const models::Gpt2Config& mc,
        const optim::OptimConfig& oc)
      : session(sc),
        model(mc, System::kLightSeq2, sc.dtype, /*seed=*/23, session.param_alloc()),
        trainer(std::make_unique<optim::LightSeq2Trainer>(model.params(), oc)) {}
};

/// Raw parameter bytes, for bitwise comparison across worlds.
std::vector<unsigned char> param_bytes(const layers::ParamRegistry& params) {
  std::vector<unsigned char> out;
  params.for_each([&](const std::string&, Tensor v, Tensor) {
    if (!v.defined() || !v.backs_real_memory()) return;
    const unsigned char* p = static_cast<const unsigned char*>(v.raw());
    out.insert(out.end(), p, p + v.bytes());
  });
  return out;
}

dist::ClusterConfig cluster_of(int dp, int pp = 1, int m = 1) {
  dist::ClusterConfig c;
  c.gpus_per_node = dp * pp;
  c.nodes = 1;
  c.pipeline_parallel = pp;
  c.microbatches = m;
  return c;
}

struct FtRun {
  core::FtReport report;
  std::vector<unsigned char> params;
  std::unique_ptr<World> world;
};

FtRun run_training(const core::FtConfig& fc, FaultPlan plan, SessionConfig sc,
                   optim::OptimConfig oc = {}) {
  const models::Gpt2Config mc = small_gpt2();
  data::LmDataset ds(mc.vocab, 4096, 47);
  const models::LmBatch batch = ds.batch(0, 4, 12);  // 4 rows: divides m=4
  auto [report, world] = core::run_fault_tolerant(
      fc, std::move(plan),
      [&](const dist::ClusterConfig&) { return std::make_unique<World>(sc, mc, oc); },
      [&](int64_t) -> const models::LmBatch& { return batch; });
  FtRun run;
  run.report = std::move(report);
  run.params = param_bytes(world->model.params());
  run.world = std::move(world);
  return run;
}

// ---------------------------------------------------------------------------
// Async checkpointer
// ---------------------------------------------------------------------------

TEST(AsyncCheckpointTest, CadenceAndInFlightLossSemantics) {
  core::AsyncCheckpointer every3(3);
  EXPECT_FALSE(every3.due(0));
  EXPECT_FALSE(every3.due(1));
  EXPECT_TRUE(every3.due(2));
  EXPECT_TRUE(every3.due(5));
  core::AsyncCheckpointer off(0);
  EXPECT_FALSE(off.due(2));

  SessionConfig sc;
  sc.system = System::kLightSeq2;
  World w(sc, small_gpt2(), {});
  data::LmDataset ds(small_gpt2().vocab, 4096, 47);
  const models::LmBatch batch = ds.batch(0, 4, 12);
  (void)core::train_step(w.session, w.model, batch, *w.trainer);

  core::AsyncCheckpointer ck(1);
  ck.snapshot(w.session, w.model.params(), *w.trainer, /*completed_step=*/0);
  EXPECT_EQ(ck.snapshots_taken(), 1);
  EXPECT_GT(ck.snapshot_bytes(), 0);
  // The host drain rides the comm stream: not usable before it completes.
  EXPECT_EQ(ck.latest_ready(0.0), nullptr);
  const double drained = w.session.device().comm_clock_us() + 1.0;
  ASSERT_NE(ck.latest_ready(drained), nullptr);
  EXPECT_EQ(ck.latest_ready(drained)->step, 0);

  // A failure BEFORE the drain completes loses the in-flight snapshot.
  core::AsyncCheckpointer lost(1);
  lost.snapshot(w.session, w.model.params(), *w.trainer, 1);
  lost.on_failure(/*fail_clock_us=*/0.0);
  EXPECT_EQ(lost.latest_ready(1e18), nullptr);
  // A failure AFTER keeps it, re-based for the rebuilt world's clock.
  ck.on_failure(1e18);
  ASSERT_NE(ck.latest_ready(0.0), nullptr);
}

TEST(AsyncCheckpointTest, RestoreRoundTripsParamsTrainerAndStepCount) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  const models::Gpt2Config mc = small_gpt2();
  data::LmDataset ds(mc.vocab, 4096, 47);
  const models::LmBatch batch = ds.batch(0, 4, 12);

  World w(sc, mc, {});
  (void)core::train_step(w.session, w.model, batch, *w.trainer);
  (void)core::train_step(w.session, w.model, batch, *w.trainer);
  const std::vector<unsigned char> at_snapshot = param_bytes(w.model.params());
  const int64_t steps_at_snapshot = w.trainer->steps_taken();

  core::AsyncCheckpointer ck(1);
  ck.snapshot(w.session, w.model.params(), *w.trainer, 1);
  (void)core::train_step(w.session, w.model, batch, *w.trainer);
  (void)core::train_step(w.session, w.model, batch, *w.trainer);
  EXPECT_NE(param_bytes(w.model.params()), at_snapshot) << "training must move params";

  ck.on_failure(1e18);
  const core::CheckpointSnapshot* snap = ck.latest_ready(0.0);
  ASSERT_NE(snap, nullptr);
  core::AsyncCheckpointer::restore(*snap, w.session, w.model.params(), *w.trainer);
  EXPECT_EQ(param_bytes(w.model.params()), at_snapshot) << "restore must be bitwise";
  EXPECT_EQ(w.trainer->steps_taken(), steps_at_snapshot);
}

// ---------------------------------------------------------------------------
// 1. Bitwise rollback-and-replay (DP x PP)
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, RollbackReplayResumesBitwiseUnderDpXPp) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.checkpoint_every = 2;

  core::FtConfig fc;
  fc.cluster = cluster_of(/*dp=*/2, /*pp=*/2, /*m=*/4);
  fc.policy = core::RecoveryPolicy::kRollbackReplay;
  fc.steps = 8;

  const FtRun clean = run_training(fc, FaultPlan{}, sc);
  ASSERT_FALSE(clean.params.empty());
  EXPECT_EQ(clean.report.failures, 0);
  EXPECT_EQ(clean.report.steps_completed, 8);
  EXPECT_GT(clean.report.snapshots, 0);
  EXPECT_GT(clean.report.checkpoint_stage_us, 0.0);

  FaultPlan plan;
  plan.add(FaultPlan::device_loss(/*step=*/5, /*rank=*/0));
  const FtRun faulted = run_training(fc, plan, sc);

  EXPECT_EQ(faulted.report.failures, 1);
  ASSERT_EQ(faulted.report.events.size(), 1u);
  EXPECT_STREQ(faulted.report.events[0].kind, "device_lost");
  EXPECT_EQ(faulted.report.events[0].fail_step, 5);
  // checkpoint_every=2 => snapshots after steps 1 and 3; restart at 4.
  EXPECT_EQ(faulted.report.events[0].restart_step, 4);
  EXPECT_FALSE(faulted.report.events[0].shrunk);
  EXPECT_GT(faulted.report.events[0].recover_us, 0.0);
  EXPECT_EQ(faulted.report.steps_completed, 8);
  // Recovery is charged: respawn + restore + replayed steps cost wall clock.
  EXPECT_GT(faulted.report.total_us, clean.report.total_us);

  // THE acceptance property: final FP32 parameters bitwise identical.
  EXPECT_EQ(faulted.params, clean.params)
      << "rollback-and-replay diverged from the fault-free trajectory";
}

// ---------------------------------------------------------------------------
// 2. Elastic DP shrink
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, ElasticShrinkContinuesDegradedWithoutRespawnWait) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.checkpoint_every = 2;

  core::FtConfig fc;
  fc.cluster = cluster_of(/*dp=*/4);
  fc.steps = 6;

  FaultPlan plan;
  plan.add(FaultPlan::device_loss(/*step=*/3, /*rank=*/1));  // a PEER dies

  fc.policy = core::RecoveryPolicy::kElasticShrink;
  const FtRun elastic = run_training(fc, plan, sc);
  fc.policy = core::RecoveryPolicy::kRollbackReplay;
  const FtRun rollback = run_training(fc, plan, sc);

  // Both complete the run; detection is at a sync point (timed-out ring).
  for (const FtRun* r : {&elastic, &rollback}) {
    EXPECT_EQ(r->report.steps_completed, 6);
    EXPECT_EQ(r->report.failures, 1);
    ASSERT_EQ(r->report.events.size(), 1u);
    EXPECT_STREQ(r->report.events[0].kind, "peer_lost");
  }
  // Elastic: the survivors re-form a 3-wide ring immediately.
  EXPECT_TRUE(elastic.report.events[0].shrunk);
  EXPECT_EQ(elastic.report.final_cluster.dp_lost, 1);
  EXPECT_EQ(elastic.report.final_cluster.dp_size(), 3);
  // Rollback: waits for the respawn, keeps the provisioned width.
  EXPECT_FALSE(rollback.report.events[0].shrunk);
  EXPECT_EQ(rollback.report.final_cluster.dp_size(), 4);
  // ...which is exactly the availability trade: elastic recovers faster.
  EXPECT_LT(elastic.report.events[0].recover_us, rollback.report.events[0].recover_us);
  // Rollback's replay is bitwise, so it matches a clean run of the same
  // schedule; elastic is DEGRADED (different ring width), not divergent —
  // its params still came from the same restored snapshot.
  const FtRun clean = run_training(fc, FaultPlan{}, sc);
  EXPECT_EQ(rollback.params, clean.params);
  EXPECT_EQ(elastic.params, clean.params)
      << "this sim executes rank 0 only, so a shrink must not change numerics";
}

TEST(FaultToleranceTest, ElasticAverageRescalesToTheSurvivingReplicas) {
  // The numerics half of the shrink: allreduce_average divides by the
  // participant count, so re-forming the group over survivors IS the
  // rescaled gradient denominator.
  auto make = [](float v) {
    Tensor t = Tensor::empty({8}, DType::kF32);
    t.fill_(v);
    return t;
  };
  Tensor a = make(1.0f), b = make(2.0f), c = make(3.0f), d = make(10.0f);
  dist::allreduce_average({a, b, c, d});
  for (float v : a.to_vector()) EXPECT_FLOAT_EQ(v, 4.0f);  // (1+2+3+10)/4

  // Rank d is lost: the survivors' next sync averages over THREE.
  Tensor a2 = make(1.0f), b2 = make(2.0f), c2 = make(3.0f);
  dist::allreduce_average({a2, b2, c2});
  for (float v : a2.to_vector()) EXPECT_FLOAT_EQ(v, 2.0f);  // (1+2+3)/3
  EXPECT_EQ(a2.to_vector(), c2.to_vector());
}

// ---------------------------------------------------------------------------
// 3. Straggler detection
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, StragglerDetectedAtItsOwnSyncPoint) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.collective_timeout_us = 20.0;  // tight: the stretched ring must trip it

  core::FtConfig fc;
  fc.cluster = cluster_of(/*dp=*/2);
  fc.steps = 6;

  FaultPlan plan;
  plan.add(FaultPlan::straggler(/*step=*/2, /*factor=*/64.0));
  const FtRun run = run_training(fc, plan, sc);

  // No failure — a straggler degrades, it does not kill the run.
  EXPECT_EQ(run.report.failures, 0);
  EXPECT_EQ(run.report.steps_completed, 6);
  // Detected within the stragglered step's own sync (one sync timeout):
  // exactly one detection, attributed to step 2.
  EXPECT_GE(run.report.timeout_exceedances, 1);
  ASSERT_EQ(run.report.stragglers_detected, 1);
  ASSERT_EQ(run.report.straggler_steps.size(), 1u);
  EXPECT_EQ(run.report.straggler_steps[0], 2);

  const FtRun clean = run_training(fc, FaultPlan{}, sc);
  EXPECT_EQ(clean.report.stragglers_detected, 0) << "no false positives";
  EXPECT_GT(run.report.total_us, clean.report.total_us) << "slow link costs time";
  EXPECT_EQ(run.params, clean.params) << "a slow wire must not change numerics";
}

// ---------------------------------------------------------------------------
// 4. Gradient corruption x GradScaler x PP microbatches
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, NanBurstSkipsExactlyOneUpdateAcrossPpMicrobatches) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF16;

  optim::OptimConfig oc;
  oc.lr = 0.01f;
  oc.dynamic_loss_scale = true;

  core::FtConfig fc;
  fc.cluster = cluster_of(/*dp=*/1, /*pp=*/2, /*m=*/4);
  fc.steps = 5;

  FaultPlan plan;
  plan.add(FaultPlan::grad_corrupt(/*step=*/2, 0, std::numeric_limits<size_t>::max()));
  const FtRun run = run_training(fc, plan, sc, oc);

  // The burst lands AFTER the 4 microbatches accumulated, at the sync
  // point; check_overflow sees it, the whole update is skipped, the scale
  // backs off, and training continues — no failure, no rollback.
  EXPECT_EQ(run.report.failures, 0);
  EXPECT_EQ(run.report.steps_completed, 5);
  const optim::GradScaler* scaler = run.world->trainer->scaler();
  ASSERT_NE(scaler, nullptr);
  EXPECT_EQ(scaler->state().overflow_steps, 1);
  EXPECT_LT(scaler->state().scale, optim::GradScalerConfig{}.init_scale);

  const FtRun clean = run_training(fc, FaultPlan{}, sc, oc);
  EXPECT_EQ(clean.world->trainer->scaler()->state().overflow_steps, 0);
  // Post-burst params are finite and the skipped step left them behind the
  // clean trajectory (one fewer effective update).
  EXPECT_NE(run.params, clean.params);
}

// ---------------------------------------------------------------------------
// 5. Typed transient allocation faults
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, InjectedAllocFaultIsTypedAndRecoverable) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  mem::ArenaAllocator arena(dev, 1 << 20);

  FaultPlan plan;
  plan.add(FaultPlan::alloc_fail(/*step=*/0, /*count=*/1));
  plan.add(FaultPlan::alloc_fail(/*step=*/0, /*count=*/1));
  simgpu::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  inj.arm(0);

  // First fault: the full typed surface.
  try {
    (void)arena.allocate(1024);
    FAIL() << "armed alloc fault must throw";
  } catch (const mem::TransientAllocFailure& e) {
    EXPECT_NE(std::string(e.what()).find("retry"), std::string::npos)
        << "the message must tell the caller a retry is expected to work";
  }
  // Second fault: catchable at every level of the hierarchy it extends.
  EXPECT_THROW((void)arena.allocate(1024), mem::OutOfMemory);
  EXPECT_EQ(inj.fired(simgpu::FaultKind::kAllocFail), 2);

  // Transient means transient: with the plan exhausted, the SAME request
  // succeeds and the arena is undamaged.
  void* p = arena.allocate(1024);
  ASSERT_NE(p, nullptr);
  arena.deallocate(p, 1024);
  EXPECT_EQ(arena.outstanding(), 0);
  dev.set_fault_injector(nullptr);
}

// ---------------------------------------------------------------------------
// 6. Serving: shedding bounds the tail, deadlines ship partial answers
// ---------------------------------------------------------------------------

models::Gpt2Config serve_gpt2() {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 4;
  cfg.max_len = 256;
  return cfg;
}

infer::ServeReport run_burst(const infer::ServeConfig& scfg,
                             const std::vector<infer::Request>& reqs,
                             simgpu::FaultInjector* inj = nullptr,
                             simgpu::ExecMode mode = simgpu::ExecMode::kModelOnly,
                             DType dt = DType::kF16) {
  const models::Gpt2Config cfg = serve_gpt2();
  const int64_t slots = 4, max_len = 144;
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = dt;
  sc.mode = mode;
  sc.arena_bytes = infer::serve_capacity_scan(cfg, dt, slots, max_len, 8);
  Session s(sc);
  if (inj != nullptr) s.device().set_fault_injector(inj);
  models::Gpt2 model(cfg, System::kLightSeq2, dt, 31, s.param_alloc());
  infer::KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  infer::ContinuousBatcher engine(s, model, cache, scfg);
  infer::ServeReport r = engine.serve(reqs);
  s.device().set_fault_injector(nullptr);
  return r;
}

TEST(DegradedServingTest, SheddingBoundsP99UnderABurst) {
  // An over-capacity burst: 64 requests arriving far faster than 4 slots
  // can drain them, so unbounded queueing grows the tail without limit.
  const auto reqs = infer::poisson_requests(64, /*rate=*/20000.0, 4, 8, 8, 64,
                                            serve_gpt2().vocab, 97);
  const infer::ServeReport open = run_burst({}, reqs);
  ASSERT_EQ(open.shed_requests, 0);
  ASSERT_EQ(open.served, static_cast<int64_t>(reqs.size()));

  infer::ServeConfig scfg;
  scfg.admission_timeout_us = open.p50_latency_us;  // bound queue time
  scfg.max_queue = 6;                               // and queue depth
  const infer::ServeReport shed = run_burst(scfg, reqs);

  EXPECT_GT(shed.shed_requests, 0) << "an over-capacity burst must shed";
  EXPECT_EQ(shed.served + shed.shed_requests, static_cast<int64_t>(reqs.size()));
  EXPECT_GT(shed.served, 0);
  EXPECT_LT(shed.p99_latency_us, open.p99_latency_us)
      << "shedding exists to bound the tail of the requests actually served";
  for (const infer::RequestStats& st : shed.requests) {
    if (st.shed) EXPECT_TRUE(st.tokens.empty()) << "shed requests never decode";
  }
}

TEST(DegradedServingTest, DeadlineRetiresWithAPartialAnswer) {
  const auto reqs = infer::poisson_requests(24, /*rate=*/8000.0, 4, 8, 24, 48,
                                            serve_gpt2().vocab, 11);
  const infer::ServeReport open = run_burst({}, reqs);
  infer::ServeConfig scfg;
  scfg.deadline_us = open.p50_latency_us;
  const infer::ServeReport sla = run_burst(scfg, reqs);

  EXPECT_GT(sla.deadline_retired, 0) << "the tail must hit the deadline";
  EXPECT_EQ(sla.shed_requests, 0);
  for (size_t i = 0; i < sla.requests.size(); ++i) {
    const infer::RequestStats& st = sla.requests[i];
    if (!st.deadline_retired) continue;
    EXPECT_GE(st.generated, 1) << "partial answer, not an empty one";
    EXPECT_LT(st.generated, reqs[static_cast<size_t>(st.id)].spec.gen_len)
        << "deadline retirement is only marked when generation was cut short";
  }
  EXPECT_LE(sla.p99_latency_us, open.p99_latency_us);
}

TEST(DegradedServingTest, DecodeStepRetriesTransientAllocFaultTokenExact) {
  const auto reqs = infer::poisson_requests(6, /*rate=*/4000.0, 2, 5, 4, 8,
                                            serve_gpt2().vocab, 29);
  const infer::ServeReport clean =
      run_burst({}, reqs, nullptr, simgpu::ExecMode::kExecute, DType::kF32);

  FaultPlan plan;
  plan.add(FaultPlan::alloc_fail(/*step=*/0, /*count=*/1, /*site=*/"serve.decode"));
  simgpu::FaultInjector inj(plan);
  inj.arm(0);
  infer::ServeConfig scfg;
  scfg.decode_retries = 2;
  scfg.retry_backoff_us = 500.0;
  const infer::ServeReport faulted =
      run_burst(scfg, reqs, &inj, simgpu::ExecMode::kExecute, DType::kF32);

  EXPECT_EQ(faulted.decode_retries, 1);
  EXPECT_EQ(inj.fired(simgpu::FaultKind::kAllocFail), 1);
  EXPECT_EQ(faulted.served, static_cast<int64_t>(reqs.size()));
  EXPECT_GT(faulted.makespan_us, clean.makespan_us) << "the backoff is charged";
  // Greedy sampling: the rerun decode step reproduces the exact tokens.
  ASSERT_EQ(faulted.requests.size(), clean.requests.size());
  for (size_t i = 0; i < clean.requests.size(); ++i) {
    EXPECT_EQ(faulted.requests[i].tokens, clean.requests[i].tokens)
        << "request " << i << ": retry changed the generation";
  }

  // Budget exhausted => the typed error escapes to the caller instead of
  // spinning forever.
  FaultPlan flood;
  flood.add(FaultPlan::alloc_fail(0, /*count=*/-1, "serve.decode"));
  simgpu::FaultInjector inj2(flood);
  inj2.arm(0);
  EXPECT_THROW(run_burst(scfg, reqs, &inj2, simgpu::ExecMode::kExecute, DType::kF32),
               mem::TransientAllocFailure);
}

// ---------------------------------------------------------------------------
// 7. Paged KV-cache lifecycle churn (refcount / COW / fragmentation property)
// ---------------------------------------------------------------------------

// Random admit / retire / fork / decode churn over an OVERSUBSCRIBED page
// pool with prefix sharing on. After every operation:
//   (1) free + used pages == pool (nothing leaks, nothing double-frees);
//   (2) the refcount sum equals the page references live sequences hold
//       (fork +1s, COW and free -1s — they must balance exactly);
//   (3) every used page has refcount >= 1, every free page refcount == 0;
//   (4) allocate() MUST succeed whenever a lane is free and the free pool
//       covers the worst case (sharing can only reduce the need).
TEST(KvCacheChurnTest, RandomPagedLifecycleChurnHoldsInvariants) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  kern::KernelContext kc(dev, nullptr, 1);
  infer::KvCacheConfig cfg;
  cfg.layers = 1;
  cfg.heads = 1;
  cfg.head_dim = 2;
  cfg.slots = 4;
  cfg.seq_tokens = 12;
  cfg.page_tokens = 4;
  cfg.prefix_sharing = true;
  // 4 lanes x 3 worst-case pages = 12 > 8: lanes outnumber worst-case
  // memory, so the churn genuinely exercises pool exhaustion.
  cfg.total_pages = 8;
  infer::KvCache cache(cfg);
  const int64_t page = cfg.page();

  Rng rng(123);
  std::vector<infer::SequenceHandle> active;
  std::unordered_map<int64_t, int32_t> shadow_len;  // handle id -> expected len
  const std::vector<int32_t> sys_prompt = {5, 6, 7, 8};  // one full page

  auto retire_at = [&](size_t i) {
    shadow_len.erase(active[i].id);
    cache.free(active[i]);
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
  };
  auto check_invariants = [&]() {
    ASSERT_EQ(cache.free_pages() + cache.used_pages(), cfg.pool_pages());
    ASSERT_EQ(cache.active_seqs(), static_cast<int64_t>(active.size()));
    int64_t held = 0;
    for (const infer::SequenceHandle& h : active) {
      held += cache.capacity(h) / page;
      ASSERT_EQ(cache.len(h), shadow_len[h.id]);
    }
    int64_t refsum = 0, used = 0;
    for (int32_t rc : cache.page_refcounts()) {
      ASSERT_GE(rc, 0);
      refsum += rc;
      if (rc > 0) ++used;
    }
    ASSERT_EQ(refsum, held) << "refcounts out of balance with live block tables";
    ASSERT_EQ(used, cache.used_pages());
  };

  for (uint64_t iter = 0; iter < 800; ++iter) {
    const int64_t op = rng.randint(1, iter, 4);
    if (op == 0) {
      // Admit: half the prompts start with the shared system page.
      std::vector<int32_t> prompt;
      if (rng.randint(5, iter, 2) == 0) {
        prompt = sys_prompt;
        const int64_t tail = rng.randint(6, iter, 3);
        for (int64_t j = 0; j < tail; ++j)
          prompt.push_back(static_cast<int32_t>(rng.randint(7, iter * 8 + static_cast<uint64_t>(j), 9)));
      } else {
        const int64_t len = 1 + rng.randint(6, iter, 6);
        for (int64_t j = 0; j < len; ++j)
          prompt.push_back(static_cast<int32_t>(100 + rng.randint(7, iter * 8 + static_cast<uint64_t>(j), 9)));
      }
      const int64_t worst = (static_cast<int64_t>(prompt.size()) + page - 1) / page;
      const bool must_fit = cache.free_lanes() > 0 && cache.free_pages() >= worst;
      const infer::SequenceHandle h =
          cache.allocate(static_cast<int64_t>(prompt.size()), prompt.data());
      if (h.valid()) {
        active.push_back(h);
        shadow_len[h.id] = static_cast<int32_t>(prompt.size());
      } else {
        EXPECT_FALSE(must_fit) << "allocate refused with a lane and worst-case pages free";
      }
    } else if (op == 1 && !active.empty()) {
      retire_at(static_cast<size_t>(
          rng.randint(2, iter, static_cast<int64_t>(active.size()))));
    } else if (op == 2 && !active.empty()) {
      const size_t i = static_cast<size_t>(
          rng.randint(3, iter, static_cast<int64_t>(active.size())));
      const bool lane_free = cache.free_lanes() > 0;
      const infer::SequenceHandle f = cache.fork(active[i]);
      EXPECT_EQ(f.valid(), lane_free) << "fork succeeds exactly when a lane is free";
      if (f.valid()) {
        shadow_len[f.id] = cache.len(active[i]);
        active.push_back(f);
      }
    } else if (op == 3 && !active.empty()) {
      // One decode step: retire at-capacity sequences, extend the rest
      // (recompute-preemption stand-in: evict the newest when the pool is
      // dry), then check the step views.
      for (size_t i = active.size(); i-- > 0;) {
        if (cache.len(active[i]) >= cfg.seq_tokens) retire_at(i);
      }
      for (size_t i = 0; i < active.size();) {
        if (cache.extend(active[i], kc, kern::Impl::kLS2)) {
          ++i;
          continue;
        }
        EXPECT_LT(cache.free_pages(), 1) << "extend refused with pages free";
        retire_at(active.size() - 1);  // evict the newest resident
        if (i >= active.size()) break;
      }
      if (active.empty()) continue;
      cache.begin_decode();
      const int32_t* pos = cache.positions().data<int32_t>();
      const int32_t* att = cache.attend_lens().data<int32_t>();
      std::set<int64_t> lanes;
      for (const infer::SequenceHandle& h : active) {
        const int64_t lane = cache.lane(h);
        lanes.insert(lane);
        EXPECT_EQ(pos[lane], shadow_len[h.id]);
        EXPECT_EQ(att[lane], shadow_len[h.id] + 1);
      }
      for (int64_t s = 0; s < cfg.slots; ++s) {
        if (!lanes.count(s)) EXPECT_EQ(att[s], 0) << "free lanes attend nothing";
      }
      cache.commit_decode();
      for (const infer::SequenceHandle& h : active) ++shadow_len[h.id];
    }
    check_invariants();
  }

  EXPECT_GT(cache.stats().shared_page_hits, 0) << "the system page must get reused";
  EXPECT_GT(cache.stats().forks, 0);

  // reset() releases everything — no leaked pages after arbitrary churn.
  const infer::SequenceHandle stale = active.empty() ? cache.allocate(1) : active.front();
  cache.reset();
  EXPECT_EQ(cache.active_seqs(), 0);
  EXPECT_EQ(cache.free_pages(), cfg.pool_pages());
  EXPECT_THROW((void)cache.len(stale), Error) << "pre-reset handles are stale";
  for (int64_t s = 0; s < cfg.slots; ++s) EXPECT_TRUE(cache.allocate(1).valid());
  EXPECT_FALSE(cache.allocate(1).valid());
}

// ---------------------------------------------------------------------------
// 8. Heartbeat monitor (real threads — the TSan lane's subject)
// ---------------------------------------------------------------------------

TEST(HeartbeatMonitorTest, SuspectsTheSilentRankAndClearsOnRevival) {
  dist::HeartbeatConfig hc;
  hc.ranks = 3;
  hc.interval = std::chrono::milliseconds(2);
  hc.timeout = std::chrono::milliseconds(40);
  dist::HeartbeatMonitor mon(hc);

  std::mutex mu;
  std::vector<int> reported;
  mon.on_suspect([&](int rank) {
    std::lock_guard<std::mutex> lock(mu);
    reported.push_back(rank);
  });
  mon.start();

  // Ranks 0 and 2 beat steadily from their own threads; rank 1 goes silent
  // after one beat.
  std::atomic<bool> stop{false};
  auto beater = [&](int rank) {
    while (!stop.load()) {
      mon.beat(rank);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  std::thread t0(beater, 0), t2(beater, 2);
  mon.beat(1);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool suspected1 = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::vector<int> s = mon.suspected();
    if (std::find(s.begin(), s.end(), 1) != s.end()) {
      suspected1 = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(suspected1) << "a silent rank must be suspected within the timeout";
  EXPECT_GE(mon.suspect_events(), 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_NE(std::find(reported.begin(), reported.end(), 1), reported.end())
        << "the on_suspect callback must have fired for rank 1";
  }

  // A revival beat clears the suspicion synchronously.
  mon.beat(1);
  const std::vector<int> after = mon.suspected();
  EXPECT_EQ(std::find(after.begin(), after.end(), 1), after.end());

  stop.store(true);
  t0.join();
  t2.join();
  mon.stop();
  EXPECT_GT(mon.scans(), 0);
}

}  // namespace
}  // namespace ls2
