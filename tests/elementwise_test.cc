#include "kernels/elementwise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/dropout.h"
#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class ElementwiseTest : public ::testing::Test {
 protected:
  ElementwiseTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}

  Tensor randn(Shape shape, uint64_t stream, DType dt = DType::kF32) {
    Tensor t = Tensor::empty(std::move(shape), dt);
    kc.rng.fill_normal(t, 1000 + stream, 0.0f, 1.0f);
    return t;
  }

  simgpu::Device dev;
  KernelContext kc;
};

// The paper's core correctness claim: fused kernels compute exactly what the
// unfused composition computes.
TEST_F(ElementwiseTest, FusedBiasReluDropoutMatchesComposition) {
  const int64_t rows = 64, cols = 96;
  Tensor x = randn({rows, cols}, 1);
  Tensor bias = randn({cols}, 2);
  const float p = 0.1f;
  const uint64_t stream = 7;

  Tensor y_fused = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  fused::bias_relu_dropout_fw(kc, x, bias, y_fused, mask, p, stream);

  // Composition: add_bias -> relu -> dropout (same rng stream).
  Tensor t1 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor t2 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor y_ref = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask_ref = Tensor::empty({rows, cols}, DType::kU8);
  baseline::add_bias(kc, x, bias, t1);
  baseline::relu_fw(kc, t1, t2);
  dropout_fw(kc, Impl::kTorch, t2, y_ref, mask_ref, p, stream);

  EXPECT_EQ(y_fused.to_vector(), y_ref.to_vector());
  EXPECT_EQ(mask.to_vector(), mask_ref.to_vector());
}

TEST_F(ElementwiseTest, FusedBiasReluDropoutBackward) {
  const int64_t rows = 32, cols = 64;
  Tensor x = randn({rows, cols}, 1);
  Tensor bias = randn({cols}, 2);
  const float p = 0.2f;
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  fused::bias_relu_dropout_fw(kc, x, bias, y, mask, p, 3);

  Tensor dy = randn({rows, cols}, 4);
  Tensor dx = Tensor::empty({rows, cols}, DType::kF32);
  fused::bias_relu_dropout_bw(kc, dy, mask, x, bias, dx, p);

  // Reference: dx = dy * mask/(1-p) * 1[x+b > 0].
  const auto xv = x.to_vector(), bv = bias.to_vector(), dyv = dy.to_vector(),
             mv = mask.to_vector(), dxv = dx.to_vector();
  for (int64_t i = 0; i < rows * cols; ++i) {
    const float pre = xv[i] + bv[i % cols];
    const float expect = mv[i] ? dyv[i] / (1 - p) * (pre > 0 ? 1.0f : 0.0f) : 0.0f;
    ASSERT_FLOAT_EQ(dxv[i], expect) << i;
  }
}

TEST_F(ElementwiseTest, FusedBiasDropoutResidualMatchesComposition) {
  const int64_t rows = 48, cols = 80;
  Tensor x = randn({rows, cols}, 1);
  Tensor bias = randn({cols}, 2);
  Tensor res = randn({rows, cols}, 3);
  const float p = 0.15f;
  const uint64_t stream = 9;

  Tensor y_fused = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  fused::bias_dropout_residual_fw(kc, x, bias, res, y_fused, mask, p, stream);

  Tensor t1 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor t2 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask_ref = Tensor::empty({rows, cols}, DType::kU8);
  Tensor y_ref = Tensor::empty({rows, cols}, DType::kF32);
  baseline::add_bias(kc, x, bias, t1);
  dropout_fw(kc, Impl::kTorch, t1, t2, mask_ref, p, stream);
  baseline::add(kc, t2, res, y_ref);

  EXPECT_EQ(y_fused.to_vector(), y_ref.to_vector());

  // Backward: dx = dy*mask/(1-p).
  Tensor dy = randn({rows, cols}, 5);
  Tensor dx = Tensor::empty({rows, cols}, DType::kF32);
  fused::bias_dropout_residual_bw(kc, dy, mask, dx, p);
  Tensor dx_ref = Tensor::empty({rows, cols}, DType::kF32);
  dropout_bw(kc, Impl::kTorch, dy, mask_ref, dx_ref, p);
  EXPECT_EQ(dx.to_vector(), dx_ref.to_vector());
}

TEST_F(ElementwiseTest, GeluBackwardMatchesFiniteDifference) {
  const int64_t n = 64;
  Tensor x = randn({n}, 1);
  Tensor dy = Tensor::empty({n}, DType::kF32);
  dy.fill_(1.0f);
  Tensor dx = Tensor::empty({n}, DType::kF32);
  baseline::gelu_bw(kc, dy, x, dx);

  const float h = 1e-3f;
  const auto xv = x.to_vector();
  const auto dxv = dx.to_vector();
  for (int64_t i = 0; i < n; ++i) {
    Tensor xp = Tensor::from_vector({xv[i] + h}, {1}, DType::kF32);
    Tensor xm = Tensor::from_vector({xv[i] - h}, {1}, DType::kF32);
    Tensor yp = Tensor::empty({1}, DType::kF32), ym = Tensor::empty({1}, DType::kF32);
    baseline::gelu_fw(kc, xp, yp);
    baseline::gelu_fw(kc, xm, ym);
    const float numeric = (yp.item() - ym.item()) / (2 * h);
    EXPECT_NEAR(dxv[i], numeric, 2e-3f) << "x=" << xv[i];
  }
}

TEST_F(ElementwiseTest, FusedGeluDropoutMatchesComposition) {
  const int64_t rows = 16, cols = 32;
  Tensor x = randn({rows, cols}, 1);
  Tensor bias = randn({cols}, 2);
  Tensor y_fused = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);
  fused::bias_gelu_dropout_fw(kc, x, bias, y_fused, mask, 0.1f, 11);

  Tensor t1 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor t2 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor y_ref = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mref = Tensor::empty({rows, cols}, DType::kU8);
  baseline::add_bias(kc, x, bias, t1);
  baseline::gelu_fw(kc, t1, t2);
  dropout_fw(kc, Impl::kTorch, t2, y_ref, mref, 0.1f, 11);
  EXPECT_EQ(y_fused.to_vector(), y_ref.to_vector());
}

TEST_F(ElementwiseTest, BiasGradColumnSums) {
  const int64_t rows = 100, cols = 7;
  Tensor dx = randn({rows, cols}, 1);
  Tensor dbias = Tensor::zeros({cols}, DType::kF32);
  bias_grad(kc, dx, dbias);
  const auto dxv = dx.to_vector();
  const auto dbv = dbias.to_vector();
  for (int64_t j = 0; j < cols; ++j) {
    double s = 0;
    for (int64_t i = 0; i < rows; ++i) s += dxv[i * cols + j];
    EXPECT_NEAR(dbv[j], s, 1e-4) << j;
  }
}

TEST_F(ElementwiseTest, FusionReducesLaunchesAndBytes) {
  const int64_t rows = 128, cols = 512;
  Tensor x = randn({rows, cols}, 1);
  Tensor bias = randn({cols}, 2);
  Tensor y = Tensor::empty({rows, cols}, DType::kF32);
  Tensor mask = Tensor::empty({rows, cols}, DType::kU8);

  dev.reset();
  fused::bias_relu_dropout_fw(kc, x, bias, y, mask, 0.1f, 1);
  const auto fused_stats = dev.stats();

  dev.reset();
  Tensor t1 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor t2 = Tensor::empty({rows, cols}, DType::kF32);
  baseline::add_bias(kc, x, bias, t1);
  baseline::relu_fw(kc, t1, t2);
  dropout_fw(kc, Impl::kTorch, t2, y, mask, 0.1f, 1);
  const auto base_stats = dev.stats();

  EXPECT_EQ(fused_stats.launches, 1);
  EXPECT_EQ(base_stats.launches, 3);
  EXPECT_LT(fused_stats.bytes_moved, base_stats.bytes_moved);
  EXPECT_LT(fused_stats.busy_us + fused_stats.overhead_us,
            base_stats.busy_us + base_stats.overhead_us);
}

TEST_F(ElementwiseTest, HalfPrecisionWithinTolerance) {
  const int64_t rows = 32, cols = 64;
  Tensor x32 = randn({rows, cols}, 1);
  Tensor b32 = randn({cols}, 2);
  Tensor x16 = Tensor::from_vector(x32.to_vector(), {rows, cols}, DType::kF16);
  Tensor b16 = Tensor::from_vector(b32.to_vector(), {cols}, DType::kF16);

  Tensor y32 = Tensor::empty({rows, cols}, DType::kF32);
  Tensor y16 = Tensor::empty({rows, cols}, DType::kF16);
  Tensor m32 = Tensor::empty({rows, cols}, DType::kU8);
  Tensor m16 = Tensor::empty({rows, cols}, DType::kU8);
  fused::bias_relu_dropout_fw(kc, x32, b32, y32, m32, 0.1f, 3);
  fused::bias_relu_dropout_fw(kc, x16, b16, y16, m16, 0.1f, 3);

  EXPECT_EQ(m32.to_vector(), m16.to_vector());  // identical masks
  const auto v32 = y32.to_vector(), v16 = y16.to_vector();
  for (size_t i = 0; i < v32.size(); ++i) {
    EXPECT_NEAR(v16[i], v32[i], 0.01f + 0.01f * std::abs(v32[i]));
  }
}

TEST_F(ElementwiseTest, CastRoundTrip) {
  Tensor x = randn({100}, 1);
  Tensor h = Tensor::empty({100}, DType::kF16);
  Tensor back = Tensor::empty({100}, DType::kF32);
  baseline::cast(kc, x, h);
  baseline::cast(kc, h, back);
  const auto xv = x.to_vector(), bv = back.to_vector();
  for (size_t i = 0; i < xv.size(); ++i)
    EXPECT_NEAR(bv[i], xv[i], std::abs(xv[i]) * 0.001f + 1e-4f);
}

TEST_F(ElementwiseTest, DropoutZeroRateKeepsEverything) {
  Tensor x = randn({1000}, 1);
  Tensor y = Tensor::empty({1000}, DType::kF32);
  Tensor mask = Tensor::empty({1000}, DType::kU8);
  dropout_fw(kc, Impl::kLS2, x, y, mask, 0.0f, 1);
  EXPECT_EQ(y.to_vector(), x.to_vector());
}

TEST_F(ElementwiseTest, DropoutRateIsRespected) {
  const int64_t n = 100000;
  Tensor x = Tensor::empty({n}, DType::kF32);
  x.fill_(1.0f);
  Tensor y = Tensor::empty({n}, DType::kF32);
  Tensor mask = Tensor::empty({n}, DType::kU8);
  dropout_fw(kc, Impl::kLS2, x, y, mask, 0.3f, 5);
  double kept = 0;
  for (float v : mask.to_vector()) kept += v;
  EXPECT_NEAR(kept / n, 0.7, 0.01);
  // Kept values are scaled by 1/(1-p): E[y] ~ 1.
  double mean = 0;
  for (float v : y.to_vector()) mean += v;
  EXPECT_NEAR(mean / n, 1.0, 0.02);
}

TEST_F(ElementwiseTest, DropoutImplsShareMasks) {
  // All four modeled systems draw identical masks for a (seed, stream):
  // they differ only in performance accounting.
  const int64_t n = 4096;
  Tensor x = randn({n}, 1);
  for (Impl impl : {Impl::kTorch, Impl::kTensorFlow, Impl::kDeepSpeed, Impl::kLS2}) {
    Tensor y = Tensor::empty({n}, DType::kF32);
    Tensor mask = Tensor::empty({n}, DType::kU8);
    dropout_fw(kc, impl, x, y, mask, 0.25f, 77);
    Tensor yl = Tensor::empty({n}, DType::kF32);
    Tensor ml = Tensor::empty({n}, DType::kU8);
    dropout_fw(kc, Impl::kLS2, x, yl, ml, 0.25f, 77);
    EXPECT_EQ(mask.to_vector(), ml.to_vector()) << impl_name(impl);
    EXPECT_EQ(y.to_vector(), yl.to_vector()) << impl_name(impl);
  }
}

TEST_F(ElementwiseTest, InvalidDropoutRateThrows) {
  Tensor x = randn({8}, 1);
  Tensor y = Tensor::empty({8}, DType::kF32);
  Tensor mask = Tensor::empty({8}, DType::kU8);
  EXPECT_THROW(dropout_fw(kc, Impl::kLS2, x, y, mask, 1.0f, 1), Error);
  EXPECT_THROW(dropout_fw(kc, Impl::kLS2, x, y, mask, -0.1f, 1), Error);
}

}  // namespace
}  // namespace ls2::kern
