#include "memory/block_plan.h"

#include <gtest/gtest.h>

namespace ls2::mem {
namespace {

size_t align256(size_t n) { return (n + 255) / 256 * 256; }

TEST(BlockPlanTest, DisjointLifetimesShareOneBlock) {
  BlockPlan plan({{"a", 1000, 1, 2}, {"b", 1000, 3, 4}, {"c", 1000, 5, 6}});
  EXPECT_EQ(plan.block_count(), 1);
  EXPECT_EQ(plan.total_bytes(), align256(1000));
  EXPECT_EQ(plan.block_of("a"), plan.block_of("b"));
  EXPECT_EQ(plan.block_of("b"), plan.block_of("c"));
}

TEST(BlockPlanTest, OverlappingLifetimesGetSeparateBlocks) {
  BlockPlan plan({{"a", 1000, 1, 4}, {"b", 1000, 2, 3}});
  EXPECT_EQ(plan.block_count(), 2);
  EXPECT_NE(plan.block_of("a"), plan.block_of("b"));
}

TEST(BlockPlanTest, BlockGrowsToLargestTenant) {
  BlockPlan plan({{"small", 100, 1, 1}, {"big", 10000, 2, 2}});
  EXPECT_EQ(plan.block_count(), 1);
  EXPECT_EQ(plan.total_bytes(), align256(10000));
  EXPECT_EQ(plan.naive_bytes(), align256(100) + align256(10000));
}

TEST(BlockPlanTest, SameStepProducersDoNotShare) {
  // Written in the same step => both live simultaneously.
  BlockPlan plan({{"x", 500, 3, 5}, {"y", 500, 3, 5}});
  EXPECT_EQ(plan.block_count(), 2);
}

TEST(BlockPlanTest, DeathBeforeBirthThrows) {
  EXPECT_THROW(BlockPlan({{"bad", 100, 5, 4}}), Error);
}

TEST(BlockPlanTest, DuplicateNameThrows) {
  EXPECT_THROW(BlockPlan({{"t", 100, 1, 2}, {"t", 100, 3, 4}}), Error);
}

TEST(BlockPlanTest, MaterializedViewsLandInAssignedBlocks) {
  BlockPlan plan({{"a", 1024, 1, 2}, {"b", 1024, 3, 4}});
  plan.materialize();
  Tensor a = plan.tensor("a", Shape{256}, DType::kF32);
  Tensor b = plan.tensor("b", Shape{256}, DType::kF32);
  EXPECT_EQ(a.raw(), b.raw());  // same block reused
  EXPECT_THROW(plan.tensor("a", Shape{1024}, DType::kF32), Error);  // too big
}

// The paper's headline memory result (§IV-D, Fig. 8): self-attention
// backward fits in 3*BLH + max(BL^2*N, 3*BLH) bytes vs 9*BLH + BL^2*N naive.
class AttentionPlanTest : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AttentionPlanTest, MatchesPaperBound) {
  const auto [B, L, H, N] = GetParam();
  const size_t elem = 2;  // fp16
  BlockPlan plan(attention_backward_plan(B, L, H, N, elem));
  const size_t blh = align256(static_cast<size_t>(B) * L * H * elem);
  const size_t bl2n = align256(static_cast<size_t>(B) * L * L * N * elem);
  const size_t expected = 3 * blh + std::max(bl2n, 3 * blh);
  EXPECT_EQ(plan.total_bytes(), expected);
  // And the paper's naive comparison: 9*BLH + BL^2*N.
  EXPECT_EQ(plan.naive_bytes(), 9 * blh + bl2n);
  EXPECT_LT(plan.total_bytes(), plan.naive_bytes());
}

std::string attention_plan_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& info) {
  return "B" + std::to_string(std::get<0>(info.param)) + "_L" +
         std::to_string(std::get<1>(info.param)) + "_H" +
         std::to_string(std::get<2>(info.param)) + "_N" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AttentionPlanTest,
    ::testing::Values(
        // L*N < 3H and L*N > 3H regimes, both branches of the max().
        std::make_tuple(8, 32, 512, 8),    // BL2N < 3BLH
        std::make_tuple(8, 256, 512, 8),   // BL2N > 3BLH
        std::make_tuple(1, 64, 1024, 16),  // Transformer-Big single sample
        std::make_tuple(64, 16, 256, 4),   // wide batch, short sequences
        std::make_tuple(2, 100, 768, 12)), // BERT-like
    attention_plan_name);

}  // namespace
}  // namespace ls2::mem
