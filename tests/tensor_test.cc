#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace ls2 {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.str(), "[2,3,4]");
  EXPECT_EQ(s.flatten_2d(), (Shape{6, 4}));
}

TEST(ShapeTest, ScalarAndVector) {
  EXPECT_EQ(Shape{}.numel(), 1);
  EXPECT_EQ((Shape{5}).flatten_2d(), (Shape{1, 5}));
}

TEST(ShapeTest, OutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(TensorTest, EmptyZerosFill) {
  Tensor t = Tensor::zeros(Shape{4, 5}, DType::kF32);
  EXPECT_EQ(t.numel(), 20);
  EXPECT_EQ(t.bytes(), 80u);
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(t.data<float>()[i], 0.0f);
  t.fill_(2.5f);
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(t.data<float>()[i], 2.5f);
}

TEST(TensorTest, DtypeCheckedAccess) {
  Tensor t = Tensor::zeros(Shape{3}, DType::kF32);
  EXPECT_NO_THROW(t.data<float>());
  EXPECT_THROW(t.data<Half>(), Error);
  EXPECT_THROW(t.data<int32_t>(), Error);
}

TEST(TensorTest, ViewSharesStorage) {
  Tensor t = Tensor::zeros(Shape{2, 6}, DType::kF32);
  Tensor v = t.view(Shape{3, 4});
  v.data<float>()[7] = 9.0f;
  EXPECT_EQ(t.data<float>()[7], 9.0f);
  EXPECT_THROW(t.view(Shape{5}), Error);
}

TEST(TensorTest, SliceIsView) {
  Tensor t = Tensor::zeros(Shape{4, 3}, DType::kF32);
  for (int64_t i = 0; i < 12; ++i) t.data<float>()[i] = static_cast<float>(i);
  Tensor s = t.slice(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_EQ(s.data<float>()[0], 3.0f);
  s.data<float>()[0] = -1.0f;
  EXPECT_EQ(t.data<float>()[3], -1.0f);
}

TEST(TensorTest, FromPtrAliases) {
  std::vector<float> host(6, 1.0f);
  Tensor t = Tensor::from_ptr(host.data(), Shape{2, 3}, DType::kF32);
  t.fill_(4.0f);
  EXPECT_EQ(host[5], 4.0f);
}

TEST(TensorTest, F16RoundTripThroughVectors) {
  Tensor t = Tensor::empty(Shape{3}, DType::kF16);
  t.copy_from({1.0f, 0.5f, -2.0f});
  const std::vector<float> back = t.to_vector();
  EXPECT_EQ(back, (std::vector<float>{1.0f, 0.5f, -2.0f}));
}

TEST(TensorTest, I32AndU8Conversions) {
  Tensor ti = Tensor::empty(Shape{3}, DType::kI32);
  ti.copy_from({1.0f, 2.0f, 300.0f});
  EXPECT_EQ(ti.data<int32_t>()[2], 300);
  Tensor tu = Tensor::empty(Shape{2}, DType::kU8);
  tu.copy_from({0.0f, 255.0f});
  EXPECT_EQ(tu.data<uint8_t>()[1], 255);
}

TEST(TensorTest, ItemAccessor) {
  Tensor t = Tensor::from_vector({3.0f, 7.0f}, Shape{2}, DType::kF32);
  EXPECT_EQ(t.item(1), 7.0f);
  EXPECT_THROW(t.item(2), Error);
}

TEST(TensorTest, CopyRequiresMatchingDtype) {
  Tensor a = Tensor::zeros(Shape{4}, DType::kF32);
  Tensor b = Tensor::zeros(Shape{4}, DType::kF16);
  EXPECT_THROW(a.copy_(b), Error);
  Tensor c = Tensor::from_vector({1, 2, 3, 4}, Shape{4}, DType::kF32);
  a.copy_(c);
  EXPECT_EQ(a.to_vector(), c.to_vector());
}

}  // namespace
}  // namespace ls2
