#include "tensor/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ls2 {
namespace {

TEST(HalfTest, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    Half h(static_cast<float>(i));
    EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(Half(0.0f).bits, 0x0000);
  EXPECT_EQ(Half(-0.0f).bits, 0x8000);
  EXPECT_EQ(Half(1.0f).bits, 0x3c00);
  EXPECT_EQ(Half(-1.0f).bits, 0xbc00);
  EXPECT_EQ(Half(2.0f).bits, 0x4000);
  EXPECT_EQ(Half(0.5f).bits, 0x3800);
  EXPECT_EQ(Half(65504.0f).bits, 0x7bff);  // max finite
}

TEST(HalfTest, OverflowToInfinity) {
  EXPECT_EQ(Half(65520.0f).bits, 0x7c00);  // rounds up to inf
  EXPECT_EQ(Half(1e30f).bits, 0x7c00);
  EXPECT_EQ(Half(-1e30f).bits, 0xfc00);
  EXPECT_TRUE(std::isinf(static_cast<float>(Half(1e30f))));
}

TEST(HalfTest, NanPropagates) {
  Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
}

TEST(HalfTest, SubnormalRange) {
  // Smallest positive subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits, 0x0001);
  EXPECT_FLOAT_EQ(static_cast<float>(Half::from_bits(0x0001)), tiny);
  // Below half of the smallest subnormal flushes to zero.
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits, 0x0000);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10);
  // RNE picks the even mantissa (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits, 0x3c00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks 1+2^-9
  // (even mantissa 2).
  EXPECT_EQ(Half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits, 0x3c02);
}

TEST(HalfTest, RoundTripAllBitPatterns) {
  // Every finite half value must survive half -> float -> half exactly.
  for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const uint16_t b = static_cast<uint16_t>(bits);
    const uint32_t exp = (b >> 10) & 0x1f;
    const uint32_t mant = b & 0x3ff;
    if (exp == 0x1f && mant != 0) continue;  // NaNs don't round-trip bitwise
    const float f = half_bits_to_float(b);
    EXPECT_EQ(float_to_half_bits(f), b) << "bits=0x" << std::hex << bits;
  }
}

TEST(HalfTest, RelativeErrorWithinHalfUlp) {
  // Conversion error for normal-range values must be <= 2^-11 relative.
  for (int i = 0; i < 10000; ++i) {
    const float f = 0.001f + 60000.0f * static_cast<float>(i) / 10000.0f;
    const float back = static_cast<float>(Half(f));
    EXPECT_LE(std::abs(back - f) / f, std::ldexp(1.0f, -11)) << f;
  }
}

TEST(HalfTest, BulkConvertMatchesScalar) {
  const int64_t n = 10000;
  std::vector<float> src(n);
  for (int64_t i = 0; i < n; ++i)
    src[static_cast<size_t>(i)] = std::sin(static_cast<float>(i)) * 100.0f;
  std::vector<Half> h(n);
  convert_float_to_half(src.data(), h.data(), n);
  std::vector<float> back(n);
  convert_half_to_float(h.data(), back.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(h[static_cast<size_t>(i)].bits, Half(src[static_cast<size_t>(i)]).bits);
    EXPECT_EQ(back[static_cast<size_t>(i)],
              static_cast<float>(Half(src[static_cast<size_t>(i)])));
  }
}

}  // namespace
}  // namespace ls2
