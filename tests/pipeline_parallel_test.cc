// Pipeline parallelism (DESIGN.md §9).
//
// The contract, in order of importance:
//  1. PARITY — an FP32 PP=k run (1F1B microbatch schedule, m=4) produces
//     bitwise the losses AND the final parameters of the single-stage run
//     seeded identically, for all four models, multi-step, WITH dropout on.
//     Microbatch gradient accumulation in ascending order over
//     accumulate-into-destination kernels IS the full-batch reduction.
//  2. SCHEDULE — the 1F1B solver reproduces the analytic bubble fraction
//     (pp-1)/(m+pp-1) on uniform stages and orders chunks per 1F1B.
//  3. HYBRID — PP composes with DP (per-stage bucket rings) and with TP
//     (2 nodes x 4 GPUs = DP2 x PP2 x TP2), numerics unchanged.
//  4. GRAPHS — capture/replay still holds bitwise across microbatches.
//  5. GROUPS — the 3-axis rank split is orthogonal, PP neighbors are
//     adjacent ranks (NVLink before fabric), bad shapes are rejected with
//     actionable messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/lightseq2.h"
#include "dist/pipeline.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

dist::ClusterConfig pp_cluster(int pp, int m, int dp = 1, int tp = 1) {
  dist::ClusterConfig c;
  c.gpus_per_node = dp * tp * pp;
  c.nodes = 1;
  c.tensor_parallel = tp;
  c.pipeline_parallel = pp;
  c.microbatches = m;
  return c;
}

// ---------------------------------------------------------------------------
// Process-group triple split (DP x PP x TP)
// ---------------------------------------------------------------------------

TEST(ProcessGroup3dTest, TripleSplitIsOrthogonal) {
  dist::ClusterConfig c;
  c.gpus_per_node = 4;
  c.nodes = 2;
  c.tensor_parallel = 2;
  c.pipeline_parallel = 2;
  c.microbatches = 4;
  dist::ProcessGroup pg(c);
  EXPECT_EQ(pg.tp_size(), 2);
  EXPECT_EQ(pg.pp_size(), 2);
  EXPECT_EQ(pg.dp_size(), 2);
  EXPECT_EQ(pg.world_size(), 8);

  // rank = ((dp * pp_size) + pp) * tp_size + tp, and the accessors invert it.
  for (int dp = 0; dp < 2; ++dp) {
    for (int pp = 0; pp < 2; ++pp) {
      for (int tp = 0; tp < 2; ++tp) {
        const int r = pg.rank_of(dp, pp, tp);
        EXPECT_EQ(pg.dp_rank(r), dp);
        EXPECT_EQ(pg.pp_rank(r), pp);
        EXPECT_EQ(pg.tp_rank(r), tp);
      }
    }
  }

  // The three groups through any rank intersect only at that rank.
  for (int r = 0; r < pg.world_size(); ++r) {
    const auto tpg = pg.tp_group_ranks(r);
    const auto ppg = pg.pp_group_ranks(r);
    const auto dpg = pg.dp_group_ranks(r);
    EXPECT_EQ(tpg.size(), 2u);
    EXPECT_EQ(ppg.size(), 2u);
    EXPECT_EQ(dpg.size(), 2u);
    for (int a : tpg) {
      for (int b : ppg) {
        if (a == b) EXPECT_EQ(a, r);
      }
      for (int b : dpg) {
        if (a == b) EXPECT_EQ(a, r);
      }
    }
    for (int a : ppg) {
      for (int b : dpg) {
        if (a == b) EXPECT_EQ(a, r);
      }
    }
  }

  // PP neighbors are ADJACENT rank blocks (stride = tp): one replica fills
  // one node here, so the boundary send stays on NVLink while the DP ring
  // is the one that crosses the fabric.
  EXPECT_EQ(pg.pp_group_ranks(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(pg.node_of(pg.rank_of(0, 0, 0)), pg.node_of(pg.rank_of(0, 1, 0)));
  EXPECT_NE(pg.node_of(pg.rank_of(0, 0, 0)), pg.node_of(pg.rank_of(1, 0, 0)));
  const simgpu::DeviceProfile prof = simgpu::v100();
  const int64_t bytes = 8 * 1024 * 1024;
  // Same-node p2p (NVLink) is strictly cheaper than cross-node (fabric).
  EXPECT_LT(pg.send_us(bytes, pg.rank_of(0, 0, 0), pg.rank_of(0, 1, 0), prof),
            pg.send_us(bytes, pg.rank_of(0, 0, 0), pg.rank_of(1, 0, 0), prof));
  EXPECT_DOUBLE_EQ(pg.stage_send_us(bytes, 0, prof),
                   pg.send_us(bytes, pg.rank_of(0, 0, 0), pg.rank_of(0, 1, 0), prof));
}

TEST(ProcessGroup3dTest, InvalidShapesAreRejectedWithClearMessages) {
  // dp x tp x pp must tile world_size.
  dist::ClusterConfig c;
  c.gpus_per_node = 4;
  c.nodes = 1;
  c.tensor_parallel = 1;
  c.pipeline_parallel = 3;
  try {
    c.validate();
    FAIL() << "3-stage pipeline on 4 GPUs should not validate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("dp x tp x pp"), std::string::npos);
  }

  // Too few microbatches to fill the pipe.
  dist::ClusterConfig u = pp_cluster(4, 2);
  try {
    u.validate();
    FAIL() << "m=2 < pp=4 should not validate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("microbatches"), std::string::npos);
  }

  // TP crossing the node boundary is still rejected with PP present.
  dist::ClusterConfig t;
  t.gpus_per_node = 2;
  t.nodes = 4;
  t.tensor_parallel = 4;
  t.pipeline_parallel = 2;
  EXPECT_THROW(t.validate(), Error);

  EXPECT_NO_THROW(pp_cluster(4, 8, /*dp=*/2, /*tp=*/1).validate());
}

// ---------------------------------------------------------------------------
// The 1F1B schedule solver
// ---------------------------------------------------------------------------

TEST(PipelineScheduleTest, UniformTwoStageScheduleIsExact) {
  dist::PipelineScheduleInput in;
  in.stages = 2;
  in.microbatches = 4;
  in.f.assign(2, std::vector<double>(4, 1.0));
  in.b.assign(2, std::vector<double>(4, 1.0));
  in.fwd_p2p_us.assign(1, 0.0);
  in.bwd_p2p_us.assign(1, 0.0);
  const dist::PipelineSchedule s = dist::solve_1f1b(in);

  // Uniform chunks hit the analytic makespan (m + pp - 1) * (f + b) and
  // lane 0's idle is exactly the (pp - 1) * (f + b) bubble.
  EXPECT_DOUBLE_EQ(s.makespan_us, 10.0);
  EXPECT_DOUBLE_EQ(s.lanes[0].busy_us, 8.0);
  EXPECT_DOUBLE_EQ(s.lanes[0].bubble_us, 2.0);
  EXPECT_DOUBLE_EQ(s.lanes[0].comm_idle_us, 0.0);

  // Stage 0 runs 1F1B order: F0 F1 B0 F2 B1 F3 B2 B3 (warm-up depth 1).
  std::vector<std::pair<bool, int>> order;
  for (const auto& ch : s.lanes[0].chunks) order.emplace_back(ch.forward, ch.microbatch);
  const std::vector<std::pair<bool, int>> want = {
      {true, 0}, {true, 1}, {false, 0}, {true, 2},
      {false, 1}, {true, 3}, {false, 2}, {false, 3}};
  EXPECT_EQ(order, want);
  // The last stage's only idle is the (pp - 1) * f pipeline-fill lead-in.
  EXPECT_DOUBLE_EQ(s.lanes[1].bubble_us, 1.0);
}

// The guard the issue asks for: steady-state bubble fraction within 10% of
// the analytic (pp-1)/(m+pp-1) on a comm-free uniform configuration.
TEST(PipelineScheduleTest, BubbleFractionMatchesAnalyticWithinTenPercent) {
  const int pp = 4, m = 8;
  dist::PipelineScheduleInput in;
  in.stages = pp;
  in.microbatches = m;
  in.f.assign(pp, std::vector<double>(m, 100.0));
  in.b.assign(pp, std::vector<double>(m, 100.0));
  in.fwd_p2p_us.assign(pp - 1, 0.0);
  in.bwd_p2p_us.assign(pp - 1, 0.0);
  const dist::PipelineSchedule s = dist::solve_1f1b(in);

  const double analytic = dist::PipelineSchedule::analytic_bubble_fraction(pp, m);
  EXPECT_DOUBLE_EQ(analytic, 3.0 / 11.0);
  const double measured = s.lanes[0].bubble_us / s.makespan_us;
  EXPECT_NEAR(measured, analytic, 0.1 * analytic);

  // More microbatches shrink the bubble (the whole point of 1F1B).
  dist::PipelineScheduleInput wide = in;
  wide.microbatches = 32;
  wide.f.assign(pp, std::vector<double>(32, 100.0));
  wide.b.assign(pp, std::vector<double>(32, 100.0));
  const dist::PipelineSchedule sw = dist::solve_1f1b(wide);
  EXPECT_LT(sw.lanes[0].bubble_us / sw.makespan_us, measured);
}

TEST(PipelineScheduleTest, ExposedP2pIsChargedToTheWaitingLane) {
  dist::PipelineScheduleInput in;
  in.stages = 2;
  in.microbatches = 2;
  in.f.assign(2, std::vector<double>(2, 10.0));
  in.b.assign(2, std::vector<double>(2, 10.0));
  in.fwd_p2p_us.assign(1, 5.0);
  in.bwd_p2p_us.assign(1, 5.0);
  const dist::PipelineSchedule s = dist::solve_1f1b(in);
  // Stage 1 waits on the activation send, stage 0 on the gradient send:
  // both lanes see some idle attributed to comm, not to the bubble alone.
  EXPECT_GT(s.lanes[1].comm_idle_us, 0.0);
  EXPECT_GT(s.lanes[0].comm_idle_us, 0.0);
  EXPECT_GT(s.makespan_us, 40.0);
}

// ---------------------------------------------------------------------------
// End-to-end parity: PP=k bitwise equals the single-stage run
// ---------------------------------------------------------------------------

template <typename ResT>
float loss_of(const ResT& res) {
  if constexpr (requires { res.loss_sum; }) {
    return res.loss_sum;
  } else {
    return res.loss;
  }
}

/// The full parity property for one model family: PP in {2, 4} training
/// with m=4 microbatches is bitwise the single-stage run — losses per step
/// AND final parameters — with dropout ON.
template <typename MakeModel, typename Batch>
void expect_pp_parity(const char* family, MakeModel make_model, const Batch& batch) {
  constexpr int kSteps = 3;
  constexpr int kMicrobatches = 4;

  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.seed = 3;
  Session ref_session(sc);
  auto ref_model = make_model(ref_session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;
  optim::LightSeq2Trainer ref_trainer(ref_model->params(), ocfg);
  std::vector<float> ref_losses;
  for (int i = 0; i < kSteps; ++i) {
    auto [times, res] = core::train_step(ref_session, *ref_model, batch, ref_trainer);
    ref_losses.push_back(loss_of(res));
  }

  for (int pp : {2, 4}) {
    Session session(sc);
    auto model = make_model(session.param_alloc());
    optim::LightSeq2Trainer trainer(model->params(), ocfg);
    const dist::ClusterConfig cluster = pp_cluster(pp, kMicrobatches);
    for (int i = 0; i < kSteps; ++i) {
      auto [times, res] = core::train_step(session, *model, batch, trainer, cluster);
      EXPECT_EQ(loss_of(res), ref_losses[static_cast<size_t>(i)])
          << family << " pp=" << pp << " step " << i << " loss diverged";
      // The 1F1B lane must report a pipeline: stage-0 compute, a bubble,
      // and boundary traffic, all feeding total_us().
      EXPECT_GT(times.forward_us, 0.0) << family << " pp=" << pp;
      EXPECT_GT(times.backward_us, 0.0) << family << " pp=" << pp;
      EXPECT_GT(times.pp_bubble_us, 0.0) << family << " pp=" << pp;
      EXPECT_GT(times.pp_comm_us, 0.0) << family << " pp=" << pp;
      EXPECT_GE(times.total_us(), times.forward_us + times.backward_us +
                                      times.pp_bubble_us + times.pp_exposed_us)
          << family << " pp=" << pp;
    }
    // Final parameters: bitwise, every declaration.
    auto& p = model->params();
    auto& r = ref_model->params();
    ASSERT_EQ(p.size(), r.size());
    for (int i = 0; i < p.size(); ++i) {
      const layers::ParamRef ref{i};
      EXPECT_EQ(std::memcmp(p.value(ref).raw(), r.value(ref).raw(),
                            r.value(ref).bytes()),
                0)
          << family << " pp=" << pp << " param '" << r.name(ref) << "' diverged";
    }
  }
}

models::TransformerConfig small_mt_config() {
  models::TransformerConfig cfg = models::TransformerConfig::base(2, 2);
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.max_len = 64;
  return cfg;
}

/// First `rows` sentence pairs of the largest bucketed batch — PP slices
/// the batch along dim 0, so the test batch must divide by m.
models::MtBatch small_mt_batch(int64_t rows) {
  data::MtDataset ds(small_mt_config().vocab, 64, 6, 12, 13);
  auto batches = data::make_mt_batches(ds, 256, DType::kF32);
  const models::MtBatch& big = data::largest_batch(batches);
  EXPECT_GE(big.src_ids.shape()[0], rows);
  models::MtBatch b = big;
  b.src_ids = big.src_ids.slice(0, rows);
  b.tgt_in = big.tgt_in.slice(0, rows);
  b.tgt_out = big.tgt_out.slice(0, rows);
  b.src_lens = big.src_lens.slice(0, rows);
  b.tgt_lens = big.tgt_lens.slice(0, rows);
  return b;
}

TEST(PpParityTest, TransformerBitwiseAcrossPpDegrees) {
  const models::MtBatch batch = small_mt_batch(4);
  expect_pp_parity("transformer", [&](BufferAllocator* alloc) {
    return std::make_unique<models::Transformer>(small_mt_config(), System::kLightSeq2,
                                                 DType::kF32, 21, alloc);
  }, batch);
}

models::Gpt2Config small_gpt2_config() {
  models::Gpt2Config cfg;
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.layers = 4;  // >= max PP degree: every stage owns at least one block
  cfg.max_len = 64;
  return cfg;
}

TEST(PpParityTest, Gpt2BitwiseAcrossPpDegrees) {
  data::LmDataset ds(64, 4096, 19);
  const models::LmBatch batch = ds.batch(0, 4, 12);
  expect_pp_parity("gpt2", [&](BufferAllocator* alloc) {
    return std::make_unique<models::Gpt2>(small_gpt2_config(), System::kLightSeq2,
                                          DType::kF32, 23, alloc);
  }, batch);
}

TEST(PpParityTest, BertBitwiseAcrossPpDegrees) {
  data::ClsDataset ds(64, 64, 32, 29);
  const models::ClsBatch batch = ds.batch(0, 4, 12);
  expect_pp_parity("bert", [&](BufferAllocator* alloc) {
    models::BertConfig cfg;
    cfg.vocab = 64;
    cfg.hidden = 32;
    cfg.heads = 4;
    cfg.ffn_dim = 64;
    cfg.layers = 4;
    cfg.max_len = 64;
    return std::make_unique<models::Bert>(cfg, System::kLightSeq2, DType::kF32, 31,
                                          alloc);
  }, batch);
}

TEST(PpParityTest, VitBitwiseAcrossPpDegrees) {
  models::VitConfig vcfg;
  vcfg.image = 64;
  vcfg.patch = 16;
  vcfg.hidden = 32;
  vcfg.heads = 4;
  vcfg.ffn_dim = 64;
  vcfg.layers = 4;
  data::ImageDataset ds(10, 64, 37);
  const models::ImageBatch batch = ds.batch(0, 4, vcfg, DType::kF32);
  expect_pp_parity("vit", [&](BufferAllocator* alloc) {
    return std::make_unique<models::Vit>(vcfg, System::kLightSeq2, DType::kF32, 41,
                                         alloc);
  }, batch);
}

// ---------------------------------------------------------------------------
// Hybrid composition: DP x PP, and the full DP x PP x TP cube
// ---------------------------------------------------------------------------

// This simulator models rank (0,0,0); DP only adds the per-stage bucket
// rings to the cost model, so DP2 x PP2 must produce bitwise the PP2
// losses while reporting real sync traffic.
TEST(HybridPpTest, Dp2xPp2MatchesPp2BitwiseAndReportsSync) {
  data::LmDataset ds(64, 4096, 47);
  const models::LmBatch batch = ds.batch(0, 4, 12);
  auto run = [&](int dp) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = DType::kF32;
    sc.seed = 5;
    Session session(sc);
    models::Gpt2 model(small_gpt2_config(), System::kLightSeq2, DType::kF32, 23,
                       session.param_alloc());
    optim::OptimConfig ocfg;
    ocfg.lr = 0.01f;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    std::vector<float> losses;
    core::StepTimes last;
    for (int i = 0; i < 3; ++i) {
      auto [times, res] =
          core::train_step(session, model, batch, trainer, pp_cluster(2, 4, dp));
      losses.push_back(res.loss_sum);
      last = times;
    }
    return std::make_pair(losses, last);
  };
  const auto [pp_losses, pp_times] = run(1);
  const auto [hy_losses, hy_times] = run(2);
  EXPECT_EQ(pp_losses, hy_losses);
  // dp=1 rings nothing; dp=2 moves every gradient byte and pays for it.
  EXPECT_EQ(pp_times.wire_bytes, 0);
  EXPECT_GT(hy_times.wire_bytes, 0);
  EXPECT_GT(hy_times.sync_us + hy_times.sync_overlapped_us, 0.0);
  EXPECT_GT(hy_times.sync_blocking_us, 0.0);
  EXPECT_GT(hy_times.update_us, 0.0);
}

// The full cube on 2 nodes x 4 GPUs: DP2 x PP2 x TP2. TP shards within a
// stage, PP splits stages, DP replicates — and rank (0,0,0)'s numerics are
// still bitwise the TP-only run's.
TEST(HybridPpTest, FullThreeAxisCompositionIsBitwise) {
  models::Gpt2Config cfg = small_gpt2_config();
  data::LmDataset ds(64, 4096, 53);
  const models::LmBatch batch = ds.batch(0, 4, 12);
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;

  auto tp_only = [&] {
    dist::ClusterConfig c;
    c.gpus_per_node = 2;
    c.nodes = 1;
    c.tensor_parallel = 2;
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = DType::kF32;
    sc.seed = 7;
    Session session(sc);
    dist::ProcessGroup pg(c);
    session.ctx().tp_group = &pg;
    models::Gpt2Config mc = cfg;
    mc.tp.size = 2;
    models::Gpt2 model(mc, System::kLightSeq2, DType::kF32, 23, session.param_alloc());
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    std::vector<float> losses;
    for (int i = 0; i < 3; ++i) {
      auto [times, res] = core::train_step(session, model, batch, trainer, c);
      losses.push_back(res.loss_sum);
    }
    return losses;
  }();

  dist::ClusterConfig cube;
  cube.gpus_per_node = 4;
  cube.nodes = 2;
  cube.tensor_parallel = 2;
  cube.pipeline_parallel = 2;
  cube.microbatches = 4;
  cube.validate();
  EXPECT_EQ(cube.dp_size(), 2);
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.seed = 7;
  Session session(sc);
  dist::ProcessGroup pg(cube);
  session.ctx().tp_group = &pg;
  models::Gpt2Config mc = cfg;
  mc.tp.size = 2;
  models::Gpt2 model(mc, System::kLightSeq2, DType::kF32, 23, session.param_alloc());
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  for (int i = 0; i < 3; ++i) {
    auto [times, res] = core::train_step(session, model, batch, trainer, cube);
    EXPECT_EQ(res.loss_sum, tp_only[static_cast<size_t>(i)]) << "step " << i;
    EXPECT_GT(times.tp_comm_us, 0.0);
    // TP waits land in the stage-0 chunks, which can make lane 0 the
    // bottleneck (zero bubble) — but the boundary sends are always there.
    EXPECT_GT(times.pp_comm_us, 0.0);
    EXPECT_GT(times.wire_bytes, 0);
  }
}

// ---------------------------------------------------------------------------
// Graph capture / replay under PP
// ---------------------------------------------------------------------------

TEST(PpGraphTest, CaptureReplayBitwiseUnderPp) {
  const models::Gpt2Config cfg = small_gpt2_config();
  data::LmDataset ds(64, 4096, 61);
  const models::LmBatch batch = ds.batch(0, 4, 12);
  constexpr int kSteps = 6;

  // Arena from the capacity probe, with slack for the engine's 1F1B
  // residency reservation (stage 0 keeps min(pp, m) microbatch activation
  // sets live at its steady-state peak).
  core::CapacityScanOptions opt;
  opt.seed = 3;
  opt.headroom = 1.0;
  const size_t arena =
      2 * core::capacity_scan(
              [&](BufferAllocator* alloc) {
                return std::make_unique<models::Gpt2>(cfg, System::kLightSeq2,
                                                      DType::kF32, 67, alloc);
              },
              batch, opt) +
      (1u << 20);

  auto run = [&](bool graph) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = DType::kF32;
    sc.seed = 3;
    sc.graph_capture = graph;
    sc.arena_bytes = arena;
    Session session(sc);
    models::Gpt2 model(cfg, System::kLightSeq2, DType::kF32, 67, session.param_alloc());
    optim::OptimConfig ocfg;
    ocfg.lr = 0.01f;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    std::vector<float> losses;
    bool any_replayed = false;
    for (int i = 0; i < kSteps; ++i) {
      auto [times, res] =
          core::train_step(session, model, batch, trainer, pp_cluster(2, 4));
      losses.push_back(res.loss_sum);
      any_replayed = any_replayed || times.replayed;
    }
    EXPECT_FALSE(session.graph_poisoned()) << session.graph_poison_reason();
    EXPECT_EQ(any_replayed, graph);
    return losses;
  };

  const auto eager = run(false);
  const auto replay = run(true);
  EXPECT_EQ(eager, replay);
}

// ---------------------------------------------------------------------------
// Reported times: the live engine's bubble against the analytic bound
// ---------------------------------------------------------------------------

TEST(PpStepTimesTest, BubbleConsistentWithAnalyticBound) {
  data::LmDataset ds(64, 4096, 71);
  const models::LmBatch batch = ds.batch(0, 8, 12);
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.seed = 9;
  Session session(sc);
  models::Gpt2 model(small_gpt2_config(), System::kLightSeq2, DType::kF32, 23,
                     session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  const int pp = 2, m = 8;
  auto [times, res] = core::train_step(session, model, batch, trainer,
                                       pp_cluster(pp, m));
  // A real model's stages are not perfectly balanced, so the measured
  // lane-0 bubble fraction sits below the uniform-stage analytic value but
  // must stay positive and within a small factor of it.
  const double span = times.forward_us + times.backward_us + times.pp_bubble_us +
                      times.pp_exposed_us;
  const double frac = times.pp_bubble_us / span;
  const double analytic = dist::PipelineSchedule::analytic_bubble_fraction(pp, m);
  EXPECT_GT(times.pp_bubble_us, 0.0);
  EXPECT_LT(frac, 4.0 * analytic);
}

}  // namespace
}  // namespace ls2
