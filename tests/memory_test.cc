#include <gtest/gtest.h>

#include "memory/arena_allocator.h"
#include "memory/caching_allocator.h"
#include "memory/workspace.h"
#include "simgpu/device.h"
#include "simgpu/profile.h"

namespace ls2::mem {
namespace {

using simgpu::Device;
using simgpu::ExecMode;

class CachingAllocatorTest : public ::testing::Test {
 protected:
  Device dev{simgpu::generic(), ExecMode::kExecute};
};

TEST_F(CachingAllocatorTest, FirstAllocationIsAMiss) {
  CachingAllocator alloc(dev);
  void* p = alloc.allocate(1000);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(alloc.cache_misses(), 1);
  EXPECT_EQ(alloc.cache_hits(), 0);
  EXPECT_EQ(alloc.bytes_in_use(), 1024);  // rounded to 512B granule
  alloc.deallocate(p, 1000);
  EXPECT_EQ(alloc.bytes_in_use(), 0);
  EXPECT_EQ(alloc.cached_bytes(), 1024);
}

TEST_F(CachingAllocatorTest, ReuseIsAHitAndCheaper) {
  CachingAllocator alloc(dev);
  void* p = alloc.allocate(1000);
  alloc.deallocate(p, 1000);
  const double clock_before = dev.clock_us();
  void* q = alloc.allocate(900);  // same bucket -> cache hit
  EXPECT_EQ(q, p);
  EXPECT_EQ(alloc.cache_hits(), 1);
  const double hit_cost = dev.clock_us() - clock_before;
  EXPECT_NEAR(hit_cost, dev.profile().cached_alloc_us, 1e-9);
  alloc.deallocate(q, 900);
}

TEST_F(CachingAllocatorTest, GrowthWhenLargerRequestsArrive) {
  // Variable-length batches: each longer sequence forces a new high
  // watermark even though shorter blocks sit in the cache (Fig. 20).
  CachingAllocator alloc(dev);
  void* a = alloc.allocate(4 << 20);
  alloc.deallocate(a, 4 << 20);
  void* b = alloc.allocate(16 << 20);  // cached 4MB too small
  EXPECT_EQ(alloc.cache_misses(), 2);
  alloc.deallocate(b, 16 << 20);
  EXPECT_EQ(alloc.peak_bytes(), 16 << 20);
  EXPECT_EQ(alloc.cached_bytes(), (4 << 20) + (16 << 20));
}

TEST_F(CachingAllocatorTest, NoWastefulReuse) {
  CachingAllocator alloc(dev);
  void* big = alloc.allocate(32 << 20);
  alloc.deallocate(big, 32 << 20);
  // A tiny request must not burn the 32MB block (waste cap 2x).
  void* small = alloc.allocate(1024);
  EXPECT_NE(small, big);
  alloc.deallocate(small, 1024);
}

TEST_F(CachingAllocatorTest, ReleaseCachedFreesDeviceMemory) {
  CachingAllocator alloc(dev);
  void* p = alloc.allocate(1 << 20);
  alloc.deallocate(p, 1 << 20);
  const int64_t frees_before = alloc.device_free_count();
  alloc.release_cached();
  EXPECT_GT(alloc.device_free_count(), frees_before);
  EXPECT_EQ(alloc.cached_bytes(), 0);
}

TEST_F(CachingAllocatorTest, SimulatedOom) {
  CachingAllocator alloc(dev);  // generic profile: 16 GB
  EXPECT_THROW(alloc.allocate(size_t{20} << 30), OutOfMemory);
}

class ArenaAllocatorTest : public ::testing::Test {
 protected:
  Device dev{simgpu::generic(), ExecMode::kExecute};
};

TEST_F(ArenaAllocatorTest, SingleUpFrontDeviceMalloc) {
  ArenaAllocator arena(dev, 1 << 20);
  EXPECT_EQ(arena.device_malloc_count(), 1);
  void* a = arena.allocate(1000);
  void* b = arena.allocate(1000);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.device_malloc_count(), 1);  // still just the reservation
  arena.deallocate(a, 1000);
  arena.deallocate(b, 1000);
}

TEST_F(ArenaAllocatorTest, InUseIsFlatAtCapacity) {
  ArenaAllocator arena(dev, 1 << 20);
  EXPECT_EQ(arena.bytes_in_use(), 1 << 20);
  void* a = arena.allocate(5000);
  EXPECT_EQ(arena.bytes_in_use(), 1 << 20);  // no change during training
  arena.deallocate(a, 5000);
}

TEST_F(ArenaAllocatorTest, ResetRewindsBumpPointer) {
  ArenaAllocator arena(dev, 4096);
  void* a = arena.allocate(2048);
  arena.deallocate(a, 2048);
  arena.reset();
  void* b = arena.allocate(2048);
  EXPECT_EQ(a, b);  // same bytes reused across steps
  arena.deallocate(b, 2048);
}

TEST_F(ArenaAllocatorTest, ResetWithLiveTensorsThrows) {
  ArenaAllocator arena(dev, 4096);
  void* a = arena.allocate(100);
  EXPECT_THROW(arena.reset(), Error);
  arena.deallocate(a, 100);
  EXPECT_NO_THROW(arena.reset());
}

TEST_F(ArenaAllocatorTest, ExhaustionThrowsOom) {
  ArenaAllocator arena(dev, 4096);
  (void)arena.allocate(4096);
  EXPECT_THROW(arena.allocate(1), OutOfMemory);
}

TEST_F(ArenaAllocatorTest, HighWaterTracksTightness) {
  ArenaAllocator arena(dev, 1 << 20);
  void* a = arena.allocate(1000);
  arena.deallocate(a, 1000);
  arena.reset();
  void* b = arena.allocate(3000);
  arena.deallocate(b, 3000);
  EXPECT_GE(arena.high_water(), 3000u);
  EXPECT_LT(arena.high_water(), 4096u);
}

TEST(WorkspaceTest, LinksAreViewsIntoOneBuffer) {
  Workspace ws;
  ws.add("w1", Shape{4, 4}, DType::kF16);
  ws.add("b1", Shape{4}, DType::kF16);
  ws.freeze();
  Tensor w1 = ws.get("w1");
  Tensor b1 = ws.get("b1");
  EXPECT_EQ(w1.shape(), (Shape{4, 4}));
  EXPECT_EQ(b1.shape(), (Shape{4}));
  // Writing through the flat view must be visible through the links.
  Tensor flat = ws.flat();
  flat.fill_(1.0f);
  EXPECT_EQ(w1.item(0), 1.0f);
  EXPECT_EQ(b1.item(3), 1.0f);
}

TEST(WorkspaceTest, FlatCoversAllParameters) {
  Workspace ws;
  ws.add("a", Shape{3}, DType::kF16);  // 6 bytes -> padded to 16
  ws.add("b", Shape{5}, DType::kF16);
  ws.freeze();
  EXPECT_EQ(ws.total_elements(), 8);
  EXPECT_EQ(ws.flat().numel(), static_cast<int64_t>(ws.total_bytes() / 2));
}

TEST(WorkspaceTest, DuplicateAndMissingNamesThrow) {
  Workspace ws;
  ws.add("p", Shape{2}, DType::kF32);
  EXPECT_THROW(ws.add("p", Shape{2}, DType::kF32), Error);
  ws.freeze();
  EXPECT_THROW(ws.get("q"), Error);
  EXPECT_TRUE(ws.contains("p"));
  EXPECT_FALSE(ws.contains("q"));
}

TEST(WorkspaceTest, AddAfterFreezeThrows) {
  Workspace ws;
  ws.add("p", Shape{2}, DType::kF32);
  ws.freeze();
  EXPECT_THROW(ws.add("q", Shape{2}, DType::kF32), Error);
}

TEST(WorkspaceTest, MixedDtypeForbidsFlat) {
  Workspace ws;
  ws.add("p", Shape{2}, DType::kF32);
  ws.add("m", Shape{2}, DType::kF16);
  ws.freeze();
  EXPECT_THROW(ws.flat(), Error);
  EXPECT_NO_THROW(ws.get("m"));
}

}  // namespace
}  // namespace ls2::mem
