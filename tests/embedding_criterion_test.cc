#include <gtest/gtest.h>

#include <cmath>

#include "kernels/criterion.h"
#include "kernels/embedding.h"
#include "simgpu/profile.h"

namespace ls2::kern {
namespace {

class EmbeddingTest : public ::testing::Test {
 protected:
  EmbeddingTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}
  simgpu::Device dev;
  KernelContext kc;
};

TEST_F(EmbeddingTest, SinusoidalTableProperties) {
  Tensor pos = Tensor::empty({64, 32}, DType::kF32);
  init_sinusoidal_positions(pos);
  const auto v = pos.to_vector();
  // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
  for (int64_t j = 0; j < 32; ++j) {
    EXPECT_NEAR(v[j], (j % 2 == 0) ? 0.0f : 1.0f, 1e-6) << j;
  }
  for (float f : v) {
    ASSERT_GE(f, -1.0f);
    ASSERT_LE(f, 1.0f);
  }
}

TEST_F(EmbeddingTest, ForwardMatchesManual) {
  const int64_t B = 2, L = 4, V = 10, H = 8;
  Tensor ids = Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8}, {B, L}, DType::kI32);
  Tensor emb = Tensor::empty({V, H}, DType::kF32);
  kc.rng.fill_normal(emb, 1, 0.0f, 1.0f);
  Tensor pos = Tensor::empty({L, H}, DType::kF32);
  init_sinusoidal_positions(pos);
  Tensor y = Tensor::empty({B, L, H}, DType::kF32);
  Tensor mask = Tensor::empty({B, L, H}, DType::kU8);
  const float scale = std::sqrt(static_cast<float>(H));
  embedding_fw(kc, Impl::kLS2, ids, emb, pos, y, mask, scale, 0.0f, 1);

  const auto ev = emb.to_vector(), pv = pos.to_vector(), yv = y.to_vector(),
             iv = ids.to_vector();
  for (int64_t t = 0; t < B * L; ++t) {
    const int w = static_cast<int>(iv[t]);
    const int64_t l = t % L;
    for (int64_t j = 0; j < H; ++j) {
      EXPECT_NEAR(yv[t * H + j], scale * ev[w * H + j] + pv[l * H + j], 1e-5);
    }
  }
}

TEST_F(EmbeddingTest, PaddingTokensProduceZeros) {
  const int64_t B = 1, L = 3, V = 5, H = 4;
  Tensor ids = Tensor::from_vector({1, 0, 2}, {B, L}, DType::kI32);
  Tensor emb = Tensor::empty({V, H}, DType::kF32);
  kc.rng.fill_normal(emb, 1, 0.0f, 1.0f);
  Tensor pos = Tensor::empty({L, H}, DType::kF32);
  init_sinusoidal_positions(pos);
  Tensor y = Tensor::empty({B, L, H}, DType::kF32);
  Tensor mask = Tensor::empty({B, L, H}, DType::kU8);
  embedding_fw(kc, Impl::kLS2, ids, emb, pos, y, mask, 1.0f, 0.0f, 1, /*pad_id=*/0);
  const auto yv = y.to_vector();
  for (int64_t j = 0; j < H; ++j) EXPECT_EQ(yv[H + j], 0.0f);  // middle token is pad
}

TEST_F(EmbeddingTest, BackwardAggregatesRepeatedTokens) {
  // Same token in several positions: grads must sum (the paper's sparse
  // atomicAdd aggregation).
  const int64_t B = 1, L = 4, V = 6, H = 4;
  Tensor ids = Tensor::from_vector({2, 5, 2, 2}, {B, L}, DType::kI32);
  Tensor mask = Tensor::empty({B, L, H}, DType::kU8);
  mask.fill_(1.0f);  // no dropout
  Tensor dy = Tensor::empty({B, L, H}, DType::kF32);
  kc.rng.fill_normal(dy, 3, 0.0f, 1.0f);
  Tensor d_emb = Tensor::empty({V, H}, DType::kF32);
  const float scale = 2.0f;
  embedding_bw(kc, Impl::kLS2, dy, ids, mask, d_emb, scale, 0.0f, /*pad_id=*/-1);

  const auto dyv = dy.to_vector();
  const auto dev_ = d_emb.to_vector();
  for (int64_t j = 0; j < H; ++j) {
    const float expect2 = scale * (dyv[0 * H + j] + dyv[2 * H + j] + dyv[3 * H + j]);
    EXPECT_NEAR(dev_[2 * H + j], expect2, 1e-4);
    EXPECT_NEAR(dev_[5 * H + j], scale * dyv[1 * H + j], 1e-5);
    EXPECT_EQ(dev_[0 * H + j], 0.0f);  // untouched rows zeroed
  }
}

TEST_F(EmbeddingTest, DropoutMaskAppliedInBackward) {
  const int64_t B = 1, L = 2, V = 4, H = 4;
  Tensor ids = Tensor::from_vector({1, 1}, {B, L}, DType::kI32);
  Tensor emb = Tensor::empty({V, H}, DType::kF32);
  kc.rng.fill_normal(emb, 1, 0.0f, 1.0f);
  Tensor pos = Tensor::empty({L, H}, DType::kF32);
  init_sinusoidal_positions(pos);
  Tensor y = Tensor::empty({B, L, H}, DType::kF32);
  Tensor mask = Tensor::empty({B, L, H}, DType::kU8);
  const float p = 0.5f;
  embedding_fw(kc, Impl::kLS2, ids, emb, pos, y, mask, 1.0f, p, 5);
  Tensor dy = Tensor::empty({B, L, H}, DType::kF32);
  dy.fill_(1.0f);
  Tensor d_emb = Tensor::empty({V, H}, DType::kF32);
  embedding_bw(kc, Impl::kLS2, dy, ids, mask, d_emb, 1.0f, p);
  const auto mv = mask.to_vector();
  const auto dv = d_emb.to_vector();
  for (int64_t j = 0; j < H; ++j) {
    const float expect = (mv[j] + mv[H + j]) / (1 - p);
    EXPECT_NEAR(dv[1 * H + j], expect, 1e-5);
  }
}

TEST_F(EmbeddingTest, FusedAndBaselineIdentical) {
  const int64_t B = 2, L = 8, V = 50, H = 16;
  Tensor ids = Tensor::empty({B, L}, DType::kI32);
  kc.rng.fill_randint(ids, 9, 1, V);
  Tensor emb = Tensor::empty({V, H}, DType::kF32);
  kc.rng.fill_normal(emb, 1, 0.0f, 0.5f);
  Tensor pos = Tensor::empty({L, H}, DType::kF32);
  init_sinusoidal_positions(pos);
  Tensor y1 = Tensor::empty({B, L, H}, DType::kF32);
  Tensor y2 = Tensor::empty({B, L, H}, DType::kF32);
  Tensor m1 = Tensor::empty({B, L, H}, DType::kU8);
  Tensor m2 = Tensor::empty({B, L, H}, DType::kU8);
  embedding_fw(kc, Impl::kLS2, ids, emb, pos, y1, m1, 4.0f, 0.1f, 77);
  embedding_fw(kc, Impl::kTorch, ids, emb, pos, y2, m2, 4.0f, 0.1f, 77);
  EXPECT_EQ(y1.to_vector(), y2.to_vector());

  Tensor dy = Tensor::empty({B, L, H}, DType::kF32);
  kc.rng.fill_normal(dy, 3, 0.0f, 1.0f);
  Tensor d1 = Tensor::empty({V, H}, DType::kF32);
  Tensor d2 = Tensor::empty({V, H}, DType::kF32);
  embedding_bw(kc, Impl::kLS2, dy, ids, m1, d1, 4.0f, 0.1f);
  embedding_bw(kc, Impl::kTorch, dy, ids, m2, d2, 4.0f, 0.1f);
  EXPECT_EQ(d1.to_vector(), d2.to_vector());
}

TEST_F(EmbeddingTest, LaunchCountsFavorFusion) {
  const int64_t B = 8, L = 32, V = 100, H = 64;
  Tensor ids = Tensor::empty({B, L}, DType::kI32);
  kc.rng.fill_randint(ids, 9, 1, V);
  Tensor emb = Tensor::zeros({V, H}, DType::kF32);
  Tensor pos = Tensor::zeros({L, H}, DType::kF32);
  Tensor y = Tensor::empty({B, L, H}, DType::kF32);
  Tensor mask = Tensor::empty({B, L, H}, DType::kU8);
  dev.reset();
  embedding_fw(kc, Impl::kLS2, ids, emb, pos, y, mask, 1.0f, 0.1f, 1);
  EXPECT_EQ(dev.stats().launches, 1);
  dev.reset();
  embedding_fw(kc, Impl::kTorch, ids, emb, pos, y, mask, 1.0f, 0.1f, 1);
  EXPECT_EQ(dev.stats().launches, 4);
}

class CriterionTest : public ::testing::TestWithParam<float> {
 protected:
  CriterionTest() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 42) {}
  simgpu::Device dev;
  KernelContext kc;
};

TEST_P(CriterionTest, LossMatchesReference) {
  const float alpha = GetParam();
  const int64_t rows = 12, V = 23;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 1, 0.0f, 2.0f);
  Tensor targets = Tensor::empty({rows}, DType::kI32);
  kc.rng.fill_randint(targets, 2, 0, V);
  Tensor loss = Tensor::empty({rows}, DType::kF32);
  Tensor stats = Tensor::empty({rows, 2}, DType::kF32);
  ls_cross_entropy_fw(kc, Impl::kLS2, logits, targets, loss, stats, alpha);

  const auto lv = logits.to_vector(), lossv = loss.to_vector(), tv = targets.to_vector();
  for (int64_t r = 0; r < rows; ++r) {
    double mx = -1e30;
    for (int64_t j = 0; j < V; ++j) mx = std::max(mx, (double)lv[r * V + j]);
    double z = 0;
    for (int64_t j = 0; j < V; ++j) z += std::exp(lv[r * V + j] - mx);
    double expect = 0;
    const int k = static_cast<int>(tv[r]);
    for (int64_t j = 0; j < V; ++j) {
      const double logq = lv[r * V + j] - mx - std::log(z);
      const double p = (j == k ? 1.0 - alpha + alpha / V : alpha / V);
      expect -= p * logq;
    }
    EXPECT_NEAR(lossv[r], expect, 1e-4) << "row " << r;
  }
}

TEST_P(CriterionTest, GradientMatchesClosedForm) {
  const float alpha = GetParam();
  const int64_t rows = 6, V = 17;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 1, 0.0f, 1.5f);
  Tensor targets = Tensor::empty({rows}, DType::kI32);
  kc.rng.fill_randint(targets, 2, 0, V);
  Tensor loss = Tensor::empty({rows}, DType::kF32);
  Tensor stats = Tensor::empty({rows, 2}, DType::kF32);
  ls_cross_entropy_fw(kc, Impl::kLS2, logits, targets, loss, stats, alpha);
  Tensor dlogits = Tensor::empty({rows, V}, DType::kF32);
  ls_cross_entropy_bw(kc, Impl::kLS2, logits, targets, stats, dlogits, alpha, 1.0f);

  // Finite differences on the summed loss.
  auto loss_sum = [&](const std::vector<float>& lvv) {
    Tensor lg = Tensor::from_vector(lvv, {rows, V}, DType::kF32);
    Tensor lo = Tensor::empty({rows}, DType::kF32);
    Tensor st = Tensor::empty({rows, 2}, DType::kF32);
    ls_cross_entropy_fw(kc, Impl::kLS2, lg, targets, lo, st, alpha);
    double s = 0;
    for (float f : lo.to_vector()) s += f;
    return s;
  };
  const auto lv = logits.to_vector();
  const auto dv = dlogits.to_vector();
  const float h = 1e-3f;
  for (int64_t i = 0; i < rows * V; i += 5) {
    auto lp = lv, lm = lv;
    lp[static_cast<size_t>(i)] += h;
    lm[static_cast<size_t>(i)] -= h;
    const double numeric = (loss_sum(lp) - loss_sum(lm)) / (2 * h);
    EXPECT_NEAR(dv[static_cast<size_t>(i)], numeric, 2e-3) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CriterionTest, ::testing::Values(0.0f, 0.1f, 0.3f),
                         [](const auto& info) {
                           return "alpha_" + std::to_string(static_cast<int>(
                                                 info.param * 100));
                         });

TEST(CriterionExtraTest, IgnoredRowsContributeNothing) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  KernelContext kc(dev, nullptr, 1);
  const int64_t rows = 4, V = 9;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 1, 0.0f, 1.0f);
  Tensor targets = Tensor::from_vector({3, -1, 5, -1}, {rows}, DType::kI32);
  Tensor loss = Tensor::empty({rows}, DType::kF32);
  Tensor stats = Tensor::empty({rows, 2}, DType::kF32);
  ls_cross_entropy_fw(kc, Impl::kLS2, logits, targets, loss, stats, 0.1f, -1);
  EXPECT_EQ(loss.to_vector()[1], 0.0f);
  EXPECT_EQ(loss.to_vector()[3], 0.0f);
  EXPECT_GT(loss.to_vector()[0], 0.0f);

  Tensor dlogits = Tensor::empty({rows, V}, DType::kF32);
  ls_cross_entropy_bw(kc, Impl::kLS2, logits, targets, stats, dlogits, 0.1f, 1.0f, -1);
  const auto dv = dlogits.to_vector();
  for (int64_t j = 0; j < V; ++j) {
    EXPECT_EQ(dv[1 * V + j], 0.0f);
    EXPECT_EQ(dv[3 * V + j], 0.0f);
  }
}

TEST(CriterionExtraTest, BaselineAndFusedIdentical) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  KernelContext kc(dev, nullptr, 1);
  const int64_t rows = 8, V = 31;
  Tensor logits = Tensor::empty({rows, V}, DType::kF32);
  kc.rng.fill_normal(logits, 1, 0.0f, 1.0f);
  Tensor targets = Tensor::empty({rows}, DType::kI32);
  kc.rng.fill_randint(targets, 2, 0, V);
  Tensor l1 = Tensor::empty({rows}, DType::kF32), l2 = Tensor::empty({rows}, DType::kF32);
  Tensor s1 = Tensor::empty({rows, 2}, DType::kF32), s2 = Tensor::empty({rows, 2}, DType::kF32);
  ls_cross_entropy_fw(kc, Impl::kLS2, logits, targets, l1, s1, 0.1f);
  ls_cross_entropy_fw(kc, Impl::kTorch, logits, targets, l2, s2, 0.1f);
  EXPECT_EQ(l1.to_vector(), l2.to_vector());
  Tensor d1 = Tensor::empty({rows, V}, DType::kF32), d2 = Tensor::empty({rows, V}, DType::kF32);
  ls_cross_entropy_bw(kc, Impl::kLS2, logits, targets, s1, d1, 0.1f, 0.5f);
  ls_cross_entropy_bw(kc, Impl::kTorch, logits, targets, s2, d2, 0.1f, 0.5f);
  EXPECT_EQ(d1.to_vector(), d2.to_vector());
}

TEST(CriterionExtraTest, FusedAvoidsVocabularyWideTemp) {
  // The baseline materialises a [rows, V] probability tensor; the fused
  // kernel must not move those extra bytes.
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  KernelContext kc(dev, nullptr, 1);
  const int64_t rows = 4096, V = 32768;
  Tensor logits = Tensor::empty({rows, V}, DType::kF16);
  Tensor targets = Tensor::zeros({rows}, DType::kI32);
  Tensor loss = Tensor::empty({rows}, DType::kF32);
  Tensor stats = Tensor::empty({rows, 2}, DType::kF32);
  dev.reset();
  ls_cross_entropy_fw(kc, Impl::kLS2, logits, targets, loss, stats, 0.1f);
  const int64_t fused_bytes = dev.stats().bytes_moved;
  const int64_t fused_launches = dev.stats().launches;
  dev.reset();
  ls_cross_entropy_fw(kc, Impl::kTorch, logits, targets, loss, stats, 0.1f);
  EXPECT_LT(fused_bytes * 3, dev.stats().bytes_moved);
  EXPECT_LT(fused_launches, dev.stats().launches);
}

TEST(CriterionExtraTest, ReduceSum) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kExecute);
  KernelContext kc(dev, nullptr, 1);
  Tensor x = Tensor::from_vector({1.5f, -0.5f, 2.0f}, {3}, DType::kF32);
  Tensor out = Tensor::empty({1}, DType::kF32);
  reduce_sum(kc, x, out);
  EXPECT_FLOAT_EQ(out.item(), 3.0f);
}

}  // namespace
}  // namespace ls2::kern
