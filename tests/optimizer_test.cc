#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "optim/lr_schedule.h"
#include "simgpu/profile.h"

namespace ls2::optim {
namespace {

layers::ParamRegistry make_params(DType dtype, bool contiguous, uint64_t seed = 1) {
  layers::ParamRegistry reg;
  reg.declare("w1", Shape{32, 16}, layers::Init::kXavier);
  reg.declare("b1", Shape{32}, layers::Init::kZero);
  reg.declare("w2", Shape{8, 32}, layers::Init::kXavier);
  reg.declare("gamma", Shape{16}, layers::Init::kOne);
  reg.materialize(dtype, contiguous, Rng(seed));
  return reg;
}

void fill_grads(layers::ParamRegistry& reg, uint64_t seed) {
  Rng rng(seed);
  int i = 0;
  reg.for_each([&](const std::string&, Tensor, Tensor g) {
    rng.fill_normal(g, static_cast<uint64_t>(100 + i++), 0.0f, 0.05f);
  });
}

struct Ctx {
  Ctx() : dev(simgpu::v100(), simgpu::ExecMode::kExecute), kc(dev, nullptr, 3) {}
  simgpu::Device dev;
  kern::KernelContext kc;
};

TEST(OptimizerTest, AllTrainersIdenticalOnF32) {
  std::vector<std::vector<float>> results;
  for (int which = 0; which < 3; ++which) {
    Ctx c;
    // Torch/Apex use per-tensor registries, LS2 needs contiguous.
    layers::ParamRegistry reg = make_params(DType::kF32, which == 2);
    OptimConfig cfg;
    cfg.lr = 0.01f;
    std::unique_ptr<Optimizer> opt;
    if (which == 0) opt = std::make_unique<TorchTrainer>(reg, cfg);
    if (which == 1) opt = std::make_unique<ApexTrainer>(reg, cfg);
    if (which == 2) opt = std::make_unique<LightSeq2Trainer>(reg, cfg);
    for (int step = 0; step < 3; ++step) {
      fill_grads(reg, static_cast<uint64_t>(step));
      opt->step(c.kc);
    }
    std::vector<float> all;
    reg.for_each([&](const std::string&, Tensor v, Tensor) {
      const auto vec = v.to_vector();
      all.insert(all.end(), vec.begin(), vec.end());
    });
    results.push_back(std::move(all));
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  ASSERT_EQ(results[0].size(), results[2].size());
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-7) << i;
    EXPECT_NEAR(results[0][i], results[2][i], 1e-7) << i;
  }
}

TEST(OptimizerTest, Fp16WorkspaceTracksFp32Masters) {
  Ctx c;
  layers::ParamRegistry reg16 = make_params(DType::kF16, true);
  layers::ParamRegistry reg32 = make_params(DType::kF32, false);
  OptimConfig cfg;
  cfg.lr = 0.005f;
  LightSeq2Trainer ls2(reg16, cfg);
  ApexTrainer apex(reg32, cfg);
  for (int step = 0; step < 5; ++step) {
    fill_grads(reg16, static_cast<uint64_t>(step));
    fill_grads(reg32, static_cast<uint64_t>(step));
    ls2.step(c.kc);
    apex.step(c.kc);
  }
  for (int i = 0; i < reg16.size(); ++i) {
    const auto a = reg16.value({i}).to_vector();
    const auto b = reg32.value({i}).to_vector();
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a[j], b[j], 2e-3f * (1.0f + std::abs(b[j])))
          << reg16.name({i}) << "[" << j << "]";
    }
  }
}

TEST(OptimizerTest, StateBytesMatchPaperClaim) {
  // §IV-C: LightSeq2 removes the FP32 parameter and gradient copies. For an
  // FP16 model with Adam: baseline state = 4P (master) + 4P (master grads)
  // + 8P (moments) = 16P; LightSeq2 = 8P (moments only). Transformer-Big has
  // ~294M params => saving ~2.2GB, the paper's "2 GB".
  layers::ParamRegistry reg16 = make_params(DType::kF16, true);
  layers::ParamRegistry reg16b = make_params(DType::kF16, false);
  OptimConfig cfg;
  LightSeq2Trainer ls2(reg16, cfg);
  TorchTrainer torch(reg16b, cfg);
  ApexTrainer apex(reg16b, cfg);
  const int64_t p = reg16b.total_elements();
  EXPECT_EQ(torch.state_bytes(), 16 * p);
  // Apex flattens (plus a 4-byte overflow flag).
  EXPECT_NEAR(static_cast<double>(apex.state_bytes()), 16.0 * p, 64);
  // LS2 moments cover the padded workspace (within alignment slack).
  EXPECT_LE(ls2.state_bytes(), 8 * p + 16 * 64);
  EXPECT_LT(ls2.state_bytes() * 1.9, torch.state_bytes());
}

TEST(OptimizerTest, SkipsStepOnGradientOverflow) {
  Ctx c;
  layers::ParamRegistry reg = make_params(DType::kF32, false);
  OptimConfig cfg;
  ApexTrainer apex(reg, cfg);
  const auto before = reg.value({0}).to_vector();
  fill_grads(reg, 1);
  reg.grad({0}).data<float>()[0] = std::numeric_limits<float>::infinity();
  apex.step(c.kc);
  EXPECT_EQ(reg.value({0}).to_vector(), before);  // update skipped
}

TEST(OptimizerTest, ModeledTrainerOrdering) {
  // Fig. 18: LightSeq2 < Apex < PyTorch in update time, for both Adam and
  // SGD, across model sizes.
  for (Algo algo : {Algo::kAdam, Algo::kSgd}) {
    simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
    kern::KernelContext kc(dev, nullptr, 0);
    // A Transformer-Base-sized parameter list: many tensors.
    auto make_big = [&](DType dt, bool contiguous) {
      layers::ParamRegistry reg;
      for (int i = 0; i < 100; ++i) {
        reg.declare("w" + std::to_string(i), Shape{512, 512}, layers::Init::kZero);
        reg.declare("b" + std::to_string(i), Shape{512}, layers::Init::kZero);
      }
      reg.materialize(dt, contiguous, Rng(1));
      return reg;
    };
    OptimConfig cfg;
    cfg.algo = algo;

    layers::ParamRegistry r1 = make_big(DType::kF16, false);
    TorchTrainer torch(r1, cfg);
    dev.reset();
    torch.step(kc);
    const double torch_t = dev.clock_us();

    layers::ParamRegistry r2 = make_big(DType::kF16, false);
    ApexTrainer apex(r2, cfg);
    dev.reset();
    apex.step(kc);
    const double apex_t = dev.clock_us();

    layers::ParamRegistry r3 = make_big(DType::kF16, true);
    LightSeq2Trainer ls2(r3, cfg);
    dev.reset();
    ls2.step(kc);
    const double ls2_t = dev.clock_us();

    EXPECT_LT(ls2_t, apex_t);
    EXPECT_LT(apex_t, torch_t);
    // The paper reports ~2.3x (Adam) / 2.4x (SGD) over Apex and ~4x over
    // PyTorch; accept a generous band for the analytic model.
    EXPECT_GT(apex_t / ls2_t, 1.5) << (algo == Algo::kAdam ? "adam" : "sgd");
    EXPECT_LT(apex_t / ls2_t, 4.0);
    EXPECT_GT(torch_t / ls2_t, 3.0);
  }
}

TEST(OptimizerTest, FactoryMapsSystems) {
  layers::ParamRegistry ws = make_params(DType::kF32, true);
  layers::ParamRegistry pt = make_params(DType::kF32, false);
  OptimConfig cfg;
  EXPECT_STREQ(make_trainer(layers::System::kFairseq, pt, cfg)->name(), "torch");
  EXPECT_STREQ(make_trainer(layers::System::kFairseqApex, pt, cfg)->name(), "apex");
  EXPECT_STREQ(make_trainer(layers::System::kDeepSpeed, pt, cfg)->name(), "apex");
  EXPECT_STREQ(make_trainer(layers::System::kLightSeq2, ws, cfg)->name(), "lightseq2");
}

TEST(OptimizerTest, LightSeq2RequiresWorkspace) {
  layers::ParamRegistry pt = make_params(DType::kF32, false);
  OptimConfig cfg;
  EXPECT_THROW(LightSeq2Trainer(pt, cfg), Error);
}

TEST(LrScheduleTest, InverseSqrtWarmup) {
  InverseSqrtSchedule sched(1e-3f, 100);
  EXPECT_NEAR(sched.lr(1), 1e-5f, 1e-9f);
  EXPECT_NEAR(sched.lr(50), 5e-4f, 1e-8f);
  EXPECT_NEAR(sched.lr(100), 1e-3f, 1e-8f);
  EXPECT_NEAR(sched.lr(400), 5e-4f, 1e-8f);  // 1e-3 * sqrt(100/400)
  EXPECT_GT(sched.lr(100), sched.lr(1000));
  EXPECT_THROW(sched.lr(0), Error);
}

}  // namespace
}  // namespace ls2::optim
