// Overlapped bucketed gradient synchronization: the two-stream device
// model, the bucket partition invariants, and the end-to-end claim that
// overlap hides most of the all-reduce behind backward (Fig. 22's
// mechanism).
#include <gtest/gtest.h>

#include "core/lightseq2.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using core::StepTimes;
using layers::System;

TEST(CommStreamTest, OverlapsComputeAndExposesTail) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  dev.advance(10.0, /*busy=*/true, "forward");
  // Transfer enqueued at t=10 runs [10, 60) on the comm stream while the
  // compute stream keeps working.
  dev.enqueue_comm(50.0, "synchronize");
  EXPECT_NEAR(dev.comm_clock_us(), 60.0, 1e-9);
  EXPECT_NEAR(dev.clock_us(), 10.0, 1e-9);
  dev.advance(20.0, /*busy=*/true, "backward");
  // Compute reached t=30; draining the comm stream exposes the last 30us.
  const double exposed = dev.sync_comm("synchronize");
  EXPECT_NEAR(exposed, 30.0, 1e-9);
  EXPECT_NEAR(dev.clock_us(), 60.0, 1e-9);
  EXPECT_NEAR(dev.stats().comm_us, 50.0, 1e-9);
  EXPECT_NEAR(dev.stats().exposed_comm_us, 30.0, 1e-9);
  EXPECT_EQ(dev.stats().comm_transfers, 1);
  // Fully drained: a second sync waits for nothing.
  EXPECT_NEAR(dev.sync_comm("synchronize"), 0.0, 1e-9);
}

TEST(CommStreamTest, TransfersSerializeAmongThemselves) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  dev.enqueue_comm(40.0, "synchronize");  // [0, 40)
  dev.advance(10.0, true, "backward");
  dev.enqueue_comm(5.0, "synchronize");  // comm busy until 40 => [40, 45)
  EXPECT_NEAR(dev.comm_clock_us(), 45.0, 1e-9);
  EXPECT_NEAR(dev.sync_comm("synchronize"), 35.0, 1e-9);
}

TEST(CommStreamTest, ResetClearsCommClock) {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  dev.enqueue_comm(50.0, "synchronize");
  dev.reset();
  EXPECT_NEAR(dev.comm_clock_us(), 0.0, 1e-9);
  EXPECT_NEAR(dev.sync_comm("synchronize"), 0.0, 1e-9);
}

TEST(BucketPlanTest, BucketsTileTheFlatGradientBufferExactly) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 16;
  models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
  const layers::ParamRegistry& params = model.params();

  // A small cap forces many buckets.
  const dist::BucketPlan plan(params, /*cap_bytes=*/4096);
  ASSERT_GT(plan.size(), 2);

  // Byte ranges: bucket 0 ends at the buffer's end (last declared params,
  // first ready); consecutive buckets abut with no gap or overlap; the last
  // bucket starts at byte 0.
  const auto& buckets = plan.buckets();
  EXPECT_EQ(buckets.front().byte_end, params.flat_grad_bytes());
  EXPECT_EQ(buckets.back().byte_begin, 0u);
  for (size_t i = 0; i + 1 < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].byte_begin, buckets[i + 1].byte_end) << "bucket " << i;
    EXPECT_GT(buckets[i].bytes(), 0);
  }
  int64_t bytes_sum = 0;
  for (const auto& b : buckets) bytes_sum += b.bytes();
  EXPECT_EQ(bytes_sum, static_cast<int64_t>(params.flat_grad_bytes()));

  // Param coverage: every param in exactly one bucket, in reverse order.
  std::vector<int> covered(static_cast<size_t>(params.size()), 0);
  for (const auto& b : buckets) {
    EXPECT_LT(b.param_begin, b.param_end);
    for (int p = b.param_begin; p < b.param_end; ++p) {
      covered[static_cast<size_t>(p)] += 1;
      EXPECT_EQ(plan.bucket_of(p), b.index);
    }
    // The bucket's byte range is exactly its params' spans.
    EXPECT_EQ(b.byte_begin, params.grad_byte_span(b.param_begin).first);
    EXPECT_EQ(b.byte_end, params.grad_byte_span(b.param_end - 1).second);
  }
  for (int p = 0; p < params.size(); ++p) {
    EXPECT_EQ(covered[static_cast<size_t>(p)], 1) << "param " << p;
  }

  // Each bucket's grad view addresses exactly its byte range.
  for (const auto& b : buckets) {
    const Tensor v = plan.grad_view(params, b);
    EXPECT_EQ(static_cast<int64_t>(v.bytes()), b.bytes());
  }
}

TEST(BucketPlanTest, PerTensorRegistrySpansTileConceptualBuffer) {
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  models::Transformer model(cfg, System::kFairseq, DType::kF32, 1);
  const dist::BucketPlan plan(model.params(), /*cap_bytes=*/4096);
  int64_t bytes_sum = 0;
  for (const auto& b : plan.buckets()) bytes_sum += b.bytes();
  EXPECT_EQ(bytes_sum, static_cast<int64_t>(model.params().flat_grad_bytes()));
}

// The paper-scale overlap claim: with bucketed overlap the exposed sync time
// is strictly less than the blocking ring total, and the step gets faster by
// exactly the hidden amount.
TEST(OverlapTest, ExposedSyncBeatsBlockingAtPaperScale) {
  auto run = [&](bool overlap) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.record_timeline = true;
    Session s(sc);
    models::TransformerConfig cfg = models::TransformerConfig::base(6, 6);
    models::Transformer model(cfg, System::kLightSeq2, DType::kF16, 1);
    optim::OptimConfig ocfg;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    data::MtDataset ds(cfg.vocab, 64, 10, 40, 5);
    auto batches = data::make_mt_batches(ds, 4096, DType::kF16);
    dist::ClusterConfig cluster{8, 2};  // 16 GPUs, InfiniBand between nodes
    cluster.overlap = overlap;
    auto [times, res] = core::train_step(s, model, batches[0], trainer, cluster);
    return std::make_pair(times, s.device().timeline().comm_spans().size());
  };

  const auto [blocking, blocking_spans] = run(false);
  const auto [overlapped, overlapped_spans] = run(true);

  // Blocking: the whole ring is exposed, nothing runs on the comm stream.
  EXPECT_NEAR(blocking.sync_us, blocking.sync_blocking_us, 1e-6);
  EXPECT_EQ(blocking.sync_overlapped_us, 0.0);
  EXPECT_EQ(blocking_spans, 0u);

  // Overlap: most of the communication hides under backward; only the tail
  // (the embedding bucket, final at backward's end) stays exposed.
  EXPECT_GT(overlapped.sync_us, 0.0);
  EXPECT_LT(overlapped.sync_us, overlapped.sync_blocking_us);
  EXPECT_GT(overlapped.sync_overlapped_us, 0.0);
  EXPECT_GT(overlapped_spans, 0u);

  // Bucketing never reduces TOTAL comm work (it adds per-ring latency), it
  // only moves it off the critical path.
  EXPECT_GE(overlapped.sync_us + overlapped.sync_overlapped_us,
            overlapped.sync_blocking_us - 1e-6);

  // Stage identity holds in both modes and the overlapped step is faster.
  for (const StepTimes* t : {&blocking, &overlapped}) {
    EXPECT_NEAR(t->total_us(),
                t->forward_us + t->backward_us + t->sync_us + t->update_us, 1e-9);
  }
  EXPECT_LT(overlapped.total_us(), blocking.total_us());
  // Compute stages are unaffected by how sync is scheduled.
  EXPECT_NEAR(overlapped.forward_us, blocking.forward_us, 1e-6);
  EXPECT_NEAR(overlapped.backward_us, blocking.backward_us, 1e-6);
}

// Zero-grad has its own device range and is charged to the update stage, so
// forward no longer absorbs it (Fig. 3 attribution fix).
TEST(OverlapTest, ZeroGradAttributedToUpdateNotForward) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  Session s(sc);
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  models::Transformer model(cfg, System::kLightSeq2, DType::kF32, 1);
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::MtDataset ds(64, 8, 3, 8, 5);
  auto batches = data::make_mt_batches(ds, 64, DType::kF32);

  auto [times, res] = core::train_step(s, model, batches[0], trainer);
  EXPECT_GT(times.zero_grad_us, 0.0);
  EXPECT_LT(times.zero_grad_us, times.update_us);  // a component of update
  EXPECT_NEAR(s.device().range_time_us("zero_grad"), times.zero_grad_us, 1e-9);
  // The "forward" device range no longer contains the zeroing kernel.
  EXPECT_NEAR(s.device().range_time_us("forward") + times.zero_grad_us +
                  s.device().range_time_us("backward") +
                  s.device().range_time_us("update"),
              times.total_us(), 1e-6);
}

TEST(OverlapTest, GuardsRejectUnmaterializedRegistry) {
  layers::ParamRegistry reg;
  reg.declare("w", Shape{4, 4}, layers::Init::kXavier);
  EXPECT_THROW(reg.flat_grads(), Error);
  EXPECT_THROW(reg.zero_grads(), Error);
  EXPECT_THROW(reg.flat_grad_bytes(), Error);
  EXPECT_THROW((dist::BucketPlan(reg)), Error);

  // Per-tensor (non-contiguous) registries have no flat view either.
  layers::ParamRegistry per_tensor;
  per_tensor.declare("w", Shape{4, 4}, layers::Init::kXavier);
  per_tensor.materialize(DType::kF32, /*contiguous=*/false, Rng(1));
  EXPECT_THROW(per_tensor.flat_grads(), Error);
  EXPECT_THROW(per_tensor.grad_byte_view(0, 16), Error);
}

TEST(OverlapTest, BucketedSyncMatchesPerParamSync) {
  models::TransformerConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  // Both pairs run through one session whose dropout RNG advances per
  // kernel, so determinism across pairs requires dropout off.
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.0f;

  data::MtDataset ds(32, 32, 3, 7, 5);
  auto batches = data::make_mt_batches(ds, 48, DType::kF32);
  ASSERT_GE(batches.size(), 2u);

  // Two pairs of replicas fed the same data, one synced per-param and one
  // per-bucket: gradients must match bitwise afterwards.
  auto make = [&](int seed) {
    return std::make_unique<models::Transformer>(cfg, System::kLightSeq2, DType::kF32,
                                                 static_cast<uint64_t>(seed));
  };
  auto a0 = make(3), a1 = make(3), b0 = make(3), b1 = make(3);
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  for (int r = 0; r < 2; ++r) {
    Session s(sc);
    models::Transformer& pa = r == 0 ? *a0 : *a1;
    models::Transformer& pb = r == 0 ? *b0 : *b1;
    for (models::Transformer* m : {&pa, &pb}) {
      m->params().zero_grads();
      m->forward(s.ctx(), batches[static_cast<size_t>(r)]);
      m->backward(s.ctx());
    }
  }
  dist::sync_gradients({&a0->params(), &a1->params()});
  const dist::BucketPlan plan(b0->params(), /*cap_bytes=*/4096);
  dist::sync_gradients_bucketed({&b0->params(), &b1->params()}, plan);

  const auto ga = a0->params().flat_grads().to_vector();
  const auto gb = b0->params().flat_grads().to_vector();
  ASSERT_EQ(ga.size(), gb.size());
  for (size_t i = 0; i < ga.size(); ++i) {
    ASSERT_EQ(ga[i], gb[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace ls2
