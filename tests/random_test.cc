#include "tensor/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ls2 {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(7, static_cast<uint64_t>(i)), b.bits(7, static_cast<uint64_t>(i)));
  }
}

TEST(RngTest, SeedsAndStreamsDecorrelate) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits(0, static_cast<uint64_t>(i)) == b.bits(0, static_cast<uint64_t>(i))) ++same;
    if (a.bits(0, static_cast<uint64_t>(i)) == a.bits(1, static_cast<uint64_t>(i))) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRangeAndWellSpread) {
  Rng rng(123);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const float u = rng.uniform(3, static_cast<uint64_t>(i));
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const float x = rng.normal(5, static_cast<uint64_t>(i));
    sum += x;
    sq += static_cast<double>(x) * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, RandintBounds) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.randint(1, static_cast<uint64_t>(i), 17);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 17);
  }
}

TEST(RngTest, FillHelpers) {
  Rng rng(5);
  Tensor u = Tensor::empty(Shape{1000}, DType::kF32);
  rng.fill_uniform(u, 0, -2.0f, 2.0f);
  for (float v : u.to_vector()) {
    ASSERT_GE(v, -2.0f);
    ASSERT_LT(v, 2.0f);
  }
  Tensor ids = Tensor::empty(Shape{1000}, DType::kI32);
  rng.fill_randint(ids, 1, 0, 32);
  for (float v : ids.to_vector()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 32.0f);
  }
  Tensor g = Tensor::empty(Shape{1000}, DType::kF16);
  rng.fill_normal(g, 2, 0.0f, 0.02f);
  double maxabs = 0;
  for (float v : g.to_vector()) maxabs = std::max(maxabs, std::abs(static_cast<double>(v)));
  EXPECT_LT(maxabs, 0.2);
  EXPECT_GT(maxabs, 0.01);
}

}  // namespace
}  // namespace ls2
