#include <gtest/gtest.h>

#include <cmath>

#include "layers/criterion_layer.h"
#include "layers/decoder_layer.h"
#include "layers/embedding_layer.h"
#include "layers/encoder_layer.h"
#include "simgpu/profile.h"

namespace ls2::layers {
namespace {

TransformerLayerConfig tiny_config(float dropout) {
  TransformerLayerConfig cfg;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.dropout = dropout;
  cfg.attn_dropout = dropout;
  cfg.act_dropout = dropout;
  return cfg;
}

struct Harness {
  explicit Harness(System system, uint64_t seed = 42)
      : device(simgpu::v100(), simgpu::ExecMode::kExecute),
        ctx(device, nullptr, policy_for(system), seed) {}

  Tensor randn(Shape shape, uint64_t stream, float sd = 1.0f) {
    Tensor t = Tensor::empty(std::move(shape), DType::kF32);
    Rng(123).fill_normal(t, stream, 0.0f, sd);
    return t;
  }

  simgpu::Device device;
  LayerContext ctx;
};

TEST(ParamRegistryTest, WorkspaceAndPerTensorInitIdentical) {
  Rng rng(7);
  ParamRegistry a, b;
  a.declare("w", Shape{8, 4}, Init::kXavier);
  a.declare("g", Shape{4}, Init::kOne);
  a.declare("e", Shape{10, 4}, Init::kNormal);
  b.declare("w", Shape{8, 4}, Init::kXavier);
  b.declare("g", Shape{4}, Init::kOne);
  b.declare("e", Shape{10, 4}, Init::kNormal);
  a.materialize(DType::kF32, /*contiguous=*/true, rng);
  b.materialize(DType::kF32, /*contiguous=*/false, rng);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value({i}).to_vector(), b.value({i}).to_vector()) << a.name({i});
  }
  // Workspace flat view must cover all parameters.
  EXPECT_GE(a.flat_values().numel(), a.total_elements());
  EXPECT_THROW(b.flat_values(), Error);
}

TEST(ParamRegistryTest, GradsZeroedAndLinked) {
  Rng rng(7);
  ParamRegistry reg;
  ParamRef w = reg.declare("w", Shape{4, 4}, Init::kXavier);
  reg.materialize(DType::kF32, true, rng);
  reg.grad(w).fill_(3.0f);
  // The flat gradient view must see the same storage.
  bool found = false;
  const auto flat = reg.flat_grads().to_vector();
  for (float v : flat) {
    if (v == 3.0f) found = true;
  }
  EXPECT_TRUE(found);
  reg.zero_grads();
  for (float v : reg.grad(w).to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(EncoderLayerTest, ForwardShapeAndFiniteValues) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerEncoderLayer layer(params, "enc.0", tiny_config(0.1f));
  params.materialize(DType::kF32, true, Rng(1));
  Tensor x = h.randn({2, 5, 16}, 1, 0.5f);
  Tensor y = layer.forward(h.ctx, x, nullptr);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
  for (float v : y.to_vector()) ASSERT_FALSE(std::isnan(v) || std::isinf(v));
  layer.release();
}

// All four systems implement the same math: given identical parameters and
// RNG streams they must produce identical outputs and gradients. This is
// the layer-level statement of the paper's "no change in training behavior".
TEST(EncoderLayerTest, PolicyEquivalenceForwardBackward) {
  std::vector<float> ref_y, ref_dx;
  std::vector<std::vector<float>> ref_grads;
  for (System sys : {System::kFairseq, System::kFairseqApex, System::kDeepSpeed,
                     System::kLightSeq2}) {
    Harness h(sys, /*seed=*/99);
    ParamRegistry params;
    TransformerEncoderLayer layer(params, "enc.0", tiny_config(0.2f));
    params.materialize(DType::kF32, sys == System::kLightSeq2, Rng(1));
    params.zero_grads();
    Tensor x = h.randn({2, 4, 16}, 1, 0.5f);
    Tensor y = layer.forward(h.ctx, x, nullptr);
    Tensor dy = h.randn({2, 4, 16}, 2, 0.1f);
    Tensor dx = layer.backward(h.ctx, dy);

    std::vector<std::vector<float>> grads;
    params.for_each([&](const std::string&, Tensor, Tensor g) {
      grads.push_back(g.to_vector());
    });
    if (ref_y.empty()) {
      ref_y = y.to_vector();
      ref_dx = dx.to_vector();
      ref_grads = grads;
    } else {
      EXPECT_EQ(y.to_vector(), ref_y) << system_name(sys);
      EXPECT_EQ(dx.to_vector(), ref_dx) << system_name(sys);
      ASSERT_EQ(grads.size(), ref_grads.size());
      for (size_t i = 0; i < grads.size(); ++i) {
        ASSERT_EQ(grads[i].size(), ref_grads[i].size());
        for (size_t j = 0; j < grads[i].size(); ++j) {
          ASSERT_NEAR(grads[i][j], ref_grads[i][j], 1e-5)
              << system_name(sys) << " param " << i << " elem " << j;
        }
      }
    }
  }
}

TEST(EncoderLayerTest, InputGradientMatchesFiniteDifference) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerEncoderLayer layer(params, "enc.0", tiny_config(0.0f));
  params.materialize(DType::kF32, true, Rng(1));

  Tensor x = h.randn({1, 3, 16}, 1, 0.5f);
  Tensor dy = h.randn({1, 3, 16}, 2, 0.3f);

  params.zero_grads();
  Tensor y = layer.forward(h.ctx, x, nullptr);
  Tensor dx = layer.backward(h.ctx, dy);
  const auto dxv = dx.to_vector();

  auto objective = [&](const std::vector<float>& xv) {
    Tensor xt = Tensor::from_vector(xv, {1, 3, 16}, DType::kF32);
    Tensor yt = layer.forward(h.ctx, xt, nullptr);
    layer.release();
    const auto yv = yt.to_vector();
    const auto dyv = dy.to_vector();
    double s = 0;
    for (size_t i = 0; i < yv.size(); ++i) s += static_cast<double>(dyv[i]) * yv[i];
    return s;
  };
  const auto xv = x.to_vector();
  const float eps = 1e-3f;
  for (size_t i = 0; i < xv.size(); i += 5) {
    auto xp = xv, xm = xv;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (objective(xp) - objective(xm)) / (2 * eps);
    EXPECT_NEAR(dxv[i], numeric, 3e-2 * (1.0 + std::abs(numeric))) << "i=" << i;
  }
}

TEST(EncoderLayerTest, WeightGradientMatchesFiniteDifference) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerEncoderLayer layer(params, "enc.0", tiny_config(0.0f));
  params.materialize(DType::kF32, true, Rng(1));

  Tensor x = h.randn({1, 3, 16}, 1, 0.5f);
  Tensor dy = h.randn({1, 3, 16}, 2, 0.3f);
  params.zero_grads();
  layer.forward(h.ctx, x, nullptr);
  layer.backward(h.ctx, dy);

  // Check a few entries of the first FFN weight and the QKV projection.
  for (const char* pname : {"enc.0.ffn.fc1.weight", "enc.0.self_attn.qkv_proj.weight",
                            "enc.0.self_attn.ln.gamma"}) {
    ParamRef ref;
    for (int i = 0; i < params.size(); ++i) {
      if (params.name({i}) == pname) ref = {i};
    }
    ASSERT_TRUE(ref.valid()) << pname;
    Tensor w = params.value(ref);
    const auto gv = params.grad(ref).to_vector();
    auto wv = w.to_vector();
    const float eps = 1e-3f;
    for (size_t i = 0; i < wv.size(); i += std::max<size_t>(1, wv.size() / 4)) {
      const float orig = wv[i];
      auto perturb = [&](float delta) {
        wv[i] = orig + delta;
        w.copy_from(wv);
        Tensor yt = layer.forward(h.ctx, x, nullptr);
        layer.release();
        const auto yv = yt.to_vector();
        const auto dyv = dy.to_vector();
        double s = 0;
        for (size_t j = 0; j < yv.size(); ++j) s += static_cast<double>(dyv[j]) * yv[j];
        return s;
      };
      const double numeric = (perturb(eps) - perturb(-eps)) / (2 * eps);
      wv[i] = orig;
      w.copy_from(wv);
      EXPECT_NEAR(gv[i], numeric, 3e-2 * (1.0 + std::abs(numeric)))
          << pname << "[" << i << "]";
    }
  }
}

TEST(EncoderLayerTest, PaddingMaskExcludesPaddedKeys) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerEncoderLayer layer(params, "enc.0", tiny_config(0.0f));
  params.materialize(DType::kF32, true, Rng(1));

  // Two inputs identical in the first 3 positions, garbage beyond; with
  // key_lens=3 the first 3 output rows must match exactly.
  Tensor x1 = h.randn({1, 5, 16}, 1, 0.5f);
  Tensor x2 = Tensor::from_vector(x1.to_vector(), {1, 5, 16}, DType::kF32);
  {
    auto v = x2.to_vector();
    for (size_t i = 3 * 16; i < v.size(); ++i) v[i] = 9.0f;
    x2.copy_from(v);
  }
  Tensor lens = Tensor::from_vector({3.0f}, {1}, DType::kI32);
  Tensor y1 = layer.forward(h.ctx, x1, &lens);
  layer.release();
  Tensor y2 = layer.forward(h.ctx, x2, &lens);
  layer.release();
  const auto v1 = y1.to_vector(), v2 = y2.to_vector();
  for (size_t i = 0; i < 3 * 16; ++i) EXPECT_FLOAT_EQ(v1[i], v2[i]) << i;
}

TEST(DecoderLayerTest, CausalityHolds) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerLayerConfig cfg = tiny_config(0.0f);
  TransformerDecoderLayer layer(params, "dec.0", cfg);
  params.materialize(DType::kF32, true, Rng(1));

  const int64_t B = 1, Lt = 6, Ls = 4, H = 16, N = 2, D = 8;
  Tensor k = h.randn({B, N, Ls, D}, 10, 0.5f);
  Tensor v = h.randn({B, N, Ls, D}, 11, 0.5f);
  Tensor x1 = h.randn({B, Lt, H}, 1, 0.5f);
  Tensor x2 = Tensor::from_vector(x1.to_vector(), {B, Lt, H}, DType::kF32);
  {
    // Change only the last position.
    auto xv = x2.to_vector();
    for (int64_t j = 0; j < H; ++j) xv[static_cast<size_t>((Lt - 1) * H + j)] += 5.0f;
    x2.copy_from(xv);
  }
  Tensor y1 = layer.forward(h.ctx, x1, k, v, nullptr, nullptr);
  layer.release();
  Tensor y2 = layer.forward(h.ctx, x2, k, v, nullptr, nullptr);
  layer.release();
  const auto v1 = y1.to_vector(), v2 = y2.to_vector();
  // Positions 0..Lt-2 must be unaffected by the change at Lt-1.
  for (size_t i = 0; i < static_cast<size_t>((Lt - 1) * H); ++i) {
    EXPECT_FLOAT_EQ(v1[i], v2[i]) << i;
  }
  // The changed position must differ.
  bool differs = false;
  for (size_t i = static_cast<size_t>((Lt - 1) * H); i < v1.size(); ++i) {
    if (v1[i] != v2[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(DecoderLayerTest, CrossAttentionGradsAccumulate) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  TransformerDecoderLayer layer(params, "dec.0", tiny_config(0.0f));
  params.materialize(DType::kF32, true, Rng(1));
  params.zero_grads();

  const int64_t B = 1, Lt = 3, Ls = 4, H = 16, N = 2, D = 8;
  Tensor k = h.randn({B, N, Ls, D}, 10, 0.5f);
  Tensor v = h.randn({B, N, Ls, D}, 11, 0.5f);
  Tensor x = h.randn({B, Lt, H}, 1, 0.5f);
  Tensor y = layer.forward(h.ctx, x, k, v, nullptr, nullptr);
  Tensor dy = h.randn({B, Lt, H}, 2, 0.2f);
  Tensor dk = Tensor::zeros({B, N, Ls, D}, DType::kF32);
  Tensor dv = Tensor::zeros({B, N, Ls, D}, DType::kF32);
  Tensor dx = layer.backward(h.ctx, dy, dk, dv);
  EXPECT_EQ(dx.shape(), x.shape());
  double knorm = 0, vnorm = 0;
  for (float f : dk.to_vector()) knorm += std::abs(f);
  for (float f : dv.to_vector()) vnorm += std::abs(f);
  EXPECT_GT(knorm, 0.0);
  EXPECT_GT(vnorm, 0.0);
}

TEST(DecoderLayerTest, DeepSpeedPolicyRejectsDecoder) {
  Harness h(System::kDeepSpeed);
  ParamRegistry params;
  TransformerDecoderLayer layer(params, "dec.0", tiny_config(0.0f));
  params.materialize(DType::kF32, false, Rng(1));
  Tensor x = h.randn({1, 4, 16}, 1);
  Tensor k = h.randn({1, 2, 4, 8}, 2);
  Tensor v = h.randn({1, 2, 4, 8}, 3);
  EXPECT_THROW(layer.forward(h.ctx, x, k, v, nullptr, nullptr), Error);
}

TEST(EmbeddingLayerTest, ForwardAndTiedBackward) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  EmbeddingConfig ecfg;
  ecfg.vocab = 20;
  ecfg.hidden = 16;
  ecfg.max_len = 8;
  ecfg.dropout = 0.0f;
  ecfg.pad_id = 0;
  EmbeddingLayer emb(params, "embed", ecfg);
  CriterionConfig ccfg;
  ccfg.vocab = 20;
  ccfg.hidden = 16;
  ccfg.pad_id = 0;
  CriterionLayer crit(params, "criterion", ccfg, emb.table());
  params.materialize(DType::kF32, true, Rng(1));
  params.zero_grads();

  Tensor ids = Tensor::from_vector({1, 2, 3, 4}, {1, 4}, DType::kI32);
  Tensor targets = Tensor::from_vector({2, 3, 4, 5}, {1, 4}, DType::kI32);
  Tensor x = emb.forward(h.ctx, ids);
  CriterionResult res = crit.forward(h.ctx, x, targets);
  EXPECT_EQ(res.tokens, 4);
  EXPECT_GT(res.loss_sum, 0.0f);
  Tensor dx = crit.backward(h.ctx);
  emb.backward(h.ctx, dx);

  // The tied table must have received gradient from BOTH the projection and
  // the embedding lookup: rows for target tokens AND input tokens non-zero.
  const auto g = params.grad(emb.table().rank0()).to_vector();
  auto row_norm = [&](int row) {
    double s = 0;
    for (int64_t j = 0; j < 16; ++j) s += std::abs(g[static_cast<size_t>(row * 16 + j)]);
    return s;
  };
  EXPECT_GT(row_norm(1), 0.0);   // input token 1 (embedding path)
  EXPECT_GT(row_norm(5), 0.0);   // target token 5 (projection path)
  EXPECT_GT(row_norm(19), 0.0);  // softmax spreads gradient over all rows
}

TEST(CriterionLayerTest, LossIgnoresPadTargets) {
  Harness h(System::kLightSeq2);
  ParamRegistry params;
  CriterionConfig cfg;
  cfg.vocab = 12;
  cfg.hidden = 8;
  cfg.pad_id = 0;
  CriterionLayer crit(params, "criterion", cfg);
  params.materialize(DType::kF32, true, Rng(1));
  params.zero_grads();
  Tensor x = Tensor::empty({1, 3, 8}, DType::kF32);
  Rng(5).fill_normal(x, 1, 0.0f, 1.0f);
  Tensor targets = Tensor::from_vector({3, 0, 7}, {1, 3}, DType::kI32);
  CriterionResult res = crit.forward(h.ctx, x, targets);
  EXPECT_EQ(res.tokens, 2);  // pad target excluded
  crit.release();
}

TEST(EncoderLayerTest, LightSeq2LaunchesFarFewerKernels) {
  const int64_t B = 4, L = 32;
  int64_t fair_launches = 0, ls2_launches = 0;
  for (System sys : {System::kFairseq, System::kLightSeq2}) {
    Harness h(sys);
    ParamRegistry params;
    TransformerLayerConfig cfg = tiny_config(0.1f);
    TransformerEncoderLayer layer(params, "enc.0", cfg);
    params.materialize(DType::kF32, sys == System::kLightSeq2, Rng(1));
    params.zero_grads();
    Tensor x = h.randn({B, L, 16}, 1, 0.5f);
    h.device.reset();
    Tensor y = layer.forward(h.ctx, x, nullptr);
    Tensor dy = h.randn({B, L, 16}, 2, 0.1f);
    layer.backward(h.ctx, dy);
    if (sys == System::kFairseq) {
      fair_launches = h.device.stats().launches;
    } else {
      ls2_launches = h.device.stats().launches;
    }
  }
  EXPECT_LT(ls2_launches, fair_launches);
  EXPECT_GE(fair_launches - ls2_launches, 15);  // substantial fusion
}

}  // namespace
}  // namespace ls2::layers
