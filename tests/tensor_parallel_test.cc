// Tensor parallelism (DESIGN.md §7).
//
// The contract, in order of importance:
//  1. PARITY — an FP32 TP=k run produces bitwise the losses of the
//     unsharded model seeded identically, and its shards gather back into
//     bitwise the unsharded parameters, for all four models, multi-step,
//     WITH dropout on. The foundation is proven directly on the GEMM:
//     column/row-parallel sharding with an in-rank-order reduction is
//     bitwise the full ascending-k accumulation.
//  2. HYBRID — TP composes with data parallelism: DP=2 x TP=2 gradients
//     match DP=2 unsharded bitwise and DP=4 up to reduction association.
//  3. COST — TP collectives charge the comm stream by the NVLink ring
//     model; shard activations reserve 1/k of the device allocator; the
//     Transformer fits at TP=4 in an arena TP=1 overflows.
//  4. GRAPHS — capture/replay still holds bitwise under TP (collectives
//     are comm-enqueue/stream-wait nodes, recomputed each replay).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/lightseq2.h"
#include "gemm/gemm.h"
#include "layers/tp.h"

namespace ls2 {
namespace {

using core::Session;
using core::SessionConfig;
using layers::System;

dist::ClusterConfig tp_cluster(int tp) {
  dist::ClusterConfig c;
  c.gpus_per_node = tp;
  c.nodes = 1;
  c.tensor_parallel = tp;
  return c;
}

// ---------------------------------------------------------------------------
// Process-group rank math and collective cost accounting
// ---------------------------------------------------------------------------

TEST(ProcessGroupTest, RankMathSplitsTpAndDpOrthogonally) {
  dist::ClusterConfig c;
  c.gpus_per_node = 4;
  c.nodes = 2;
  c.tensor_parallel = 2;
  dist::ProcessGroup pg(c);
  EXPECT_EQ(pg.tp_size(), 2);
  EXPECT_EQ(pg.dp_size(), 4);
  EXPECT_EQ(pg.world_size(), 8);

  // rank 5 = node 1, local 1 -> tp_rank 1, dp_rank 2.
  EXPECT_EQ(pg.tp_rank(5), 1);
  EXPECT_EQ(pg.dp_rank(5), 2);
  EXPECT_EQ(pg.tp_group_ranks(5), (std::vector<int>{4, 5}));
  EXPECT_EQ(pg.dp_group_ranks(5), (std::vector<int>{1, 3, 5, 7}));
  // TP groups never cross the node boundary (ranks 4,5 both on node 1).
  for (int r = 0; r < pg.world_size(); ++r) {
    const auto grp = pg.tp_group_ranks(r);
    EXPECT_EQ(grp.front() / c.gpus_per_node, grp.back() / c.gpus_per_node);
  }
  // Indivisible TP degree is rejected.
  dist::ClusterConfig bad = c;
  bad.tensor_parallel = 3;
  EXPECT_THROW(dist::ProcessGroup{bad}, Error);
}

TEST(ProcessGroupTest, CollectiveChargesMatchTheNvlinkRingModel) {
  const simgpu::DeviceProfile prof = simgpu::v100();
  simgpu::Device dev(prof, simgpu::ExecMode::kModelOnly);
  dist::ProcessGroup pg(tp_cluster(4));
  const int64_t bytes = 64 * 1024 * 1024;

  // Analytic forms: ring all-reduce 2(k-1)/k, gather/scatter (k-1)/k.
  const double ar = pg.all_reduce_us(bytes, prof);
  const double ag = pg.all_gather_us(bytes, prof);
  EXPECT_DOUBLE_EQ(ar, 2.0 * 3.0 * (bytes / 4.0) / (prof.nvlink_bus_gb_s * 1e3) +
                           6.0 * prof.allreduce_latency_us);
  EXPECT_DOUBLE_EQ(ag, 3.0 * (bytes / 4.0) / (prof.nvlink_bus_gb_s * 1e3) +
                           3.0 * prof.allreduce_latency_us);
  EXPECT_DOUBLE_EQ(pg.reduce_scatter_us(bytes, prof), ag);

  // Charging: the transfer lands on the comm stream; the immediate wait
  // exposes all of it (nothing overlaps here) and the stats account it.
  const double exposed = pg.all_reduce(dev, bytes, "t");
  EXPECT_DOUBLE_EQ(exposed, ar);
  EXPECT_DOUBLE_EQ(dev.stats().comm_us, ar);
  EXPECT_DOUBLE_EQ(dev.stats().exposed_comm_us, ar);
  EXPECT_EQ(pg.stats().collectives, 1);
  EXPECT_EQ(pg.stats().bytes, bytes);
  EXPECT_DOUBLE_EQ(pg.stats().comm_us, ar);
  EXPECT_DOUBLE_EQ(pg.stats().exposed_us, ar);

  // Enqueue-compute-wait hides the transfer behind independent compute.
  pg.reset_stats();
  const double done = pg.all_reduce_begin(dev, bytes, "t");
  dev.advance(ar * 2, /*busy=*/true, "compute");
  const double exposed2 = pg.wait(dev, done, "t");
  EXPECT_DOUBLE_EQ(exposed2, 0.0);
  EXPECT_DOUBLE_EQ(pg.stats().exposed_us, 0.0);
  EXPECT_DOUBLE_EQ(pg.stats().comm_us, ar);

  // TP=1 charges nothing.
  dist::ProcessGroup solo(tp_cluster(1));
  EXPECT_DOUBLE_EQ(solo.all_reduce_us(bytes, prof), 0.0);
}

// ---------------------------------------------------------------------------
// The bitwise foundation: sharded GEMM arithmetic
// ---------------------------------------------------------------------------

// Column/row-parallel GEMMs with an IN-RANK-ORDER reduction are bitwise the
// unsharded GEMM — real sharded arithmetic here, not the emulation. This is
// the theorem that lets layers compute full tensors as the stand-in for
// their shards (layers/tp.h).
TEST(ShardedGemmTest, ColumnAndRowShardingMatchFullBitwise) {
  const int64_t M = 13, N = 24, K = 36, k = 4;
  Rng rng(7);
  Tensor x = Tensor::empty({M, K}, DType::kF32);
  Tensor w = Tensor::empty({N, K}, DType::kF32);
  rng.fill_uniform(x, 1, -1.0f, 1.0f);
  rng.fill_uniform(w, 2, -1.0f, 1.0f);

  Tensor y_full = Tensor::zeros({M, N}, DType::kF32);
  gemm::sgemm(false, true, M, N, K, 1.0f, x.data<float>(), w.data<float>(), 0.0f,
              y_full.data<float>());

  // Column-parallel: rank r owns rows [r*N/k, ...) of W and computes its
  // own output columns — plain slices, bitwise by construction.
  {
    Tensor y = Tensor::zeros({M, N}, DType::kF32);
    for (int64_t r = 0; r < k; ++r) {
      const int64_t nr = N / k;
      Tensor w_shard = w.slice(r * nr, (r + 1) * nr);
      std::vector<float> part(static_cast<size_t>(M * nr));
      gemm::sgemm(false, true, M, nr, K, 1.0f, x.data<float>(), w_shard.data<float>(),
                  0.0f, part.data());
      float* yp = y.data<float>();
      for (int64_t i = 0; i < M; ++i)
        for (int64_t j = 0; j < nr; ++j) yp[i * N + r * nr + j] = part[i * nr + j];
    }
    EXPECT_EQ(std::memcmp(y.raw(), y_full.raw(), y_full.bytes()), 0);
  }

  // Row-parallel: rank r owns K/k input features; partials are summed in
  // ascending rank order (the in-order ring), which is EXACTLY the full
  // GEMM's ascending-k accumulation — bitwise, not approximately.
  {
    Tensor y = Tensor::zeros({M, N}, DType::kF32);
    const int64_t kr = K / k;
    for (int64_t r = 0; r < k; ++r) {
      std::vector<float> x_shard(static_cast<size_t>(M * kr));
      std::vector<float> w_shard(static_cast<size_t>(N * kr));
      const float* xp = x.data<float>();
      const float* wp = w.data<float>();
      for (int64_t i = 0; i < M; ++i)
        for (int64_t j = 0; j < kr; ++j) x_shard[i * kr + j] = xp[i * K + r * kr + j];
      for (int64_t i = 0; i < N; ++i)
        for (int64_t j = 0; j < kr; ++j) w_shard[i * kr + j] = wp[i * K + r * kr + j];
      gemm::sgemm(false, true, M, N, kr, 1.0f, x_shard.data(), w_shard.data(),
                  r == 0 ? 0.0f : 1.0f, y.data<float>());
    }
    EXPECT_EQ(std::memcmp(y.raw(), y_full.raw(), y_full.bytes()), 0);
  }
}

// Sharded declarations initialise as SLICES of the full tensor: same RNG
// stream, full-shape Xavier fans, groups-aware row slicing.
TEST(ShardedParamTest, ShardedInitMatchesUnshardedSlices) {
  const int64_t R = 12, C = 6, k = 2;
  layers::ParamRegistry ref;
  layers::ParamRef full_w = ref.declare("w", Shape{R, C}, layers::Init::kXavier);
  layers::ParamRef full_t = ref.declare("t", Shape{R, C}, layers::Init::kNormal);
  ref.materialize(DType::kF32, false, Rng(5));

  layers::ParamRegistry sh;
  layers::ShardSpec s0{/*dim=*/0, /*groups=*/3, /*index=*/0, /*count=*/k};
  layers::ShardSpec s1 = s0;
  s1.index = 1;
  layers::ParamRef w0 = sh.declare_sharded("w", Shape{R, C}, layers::Init::kXavier, s0);
  layers::ParamRef w1 =
      sh.declare_sharded("w.tp1", Shape{R, C}, layers::Init::kXavier, s1, 9000 + 0);
  layers::ShardSpec c0{/*dim=*/1, /*groups=*/1, 0, k};
  layers::ShardSpec c1 = c0;
  c1.index = 1;
  // "t" is declaration #2 here but #1 in the reference (this test registry
  // holds the peer shard inline; the real flow keeps peers in their own
  // registry, where indices align) — so pin its stream explicitly.
  layers::ParamRef t0 =
      sh.declare_sharded("t", Shape{R, C}, layers::Init::kNormal, c0, 9000 + 1);
  layers::ParamRef t1 =
      sh.declare_sharded("t.tp1", Shape{R, C}, layers::Init::kNormal, c1, 9000 + 1);
  sh.materialize(DType::kF32, false, Rng(5));

  EXPECT_EQ(sh.shape(w0), (Shape{R / k, C}));
  EXPECT_EQ(sh.full_shape(w0), (Shape{R, C}));

  // Reassemble and compare bitwise against the unsharded init.
  Tensor w_gathered = Tensor::zeros({R, C}, DType::kF32);
  layers::copy_full_from_shard(sh.value(w0), w_gathered, s0);
  layers::copy_full_from_shard(sh.value(w1), w_gathered, s1);
  EXPECT_EQ(std::memcmp(w_gathered.raw(), ref.value(full_w).raw(), w_gathered.bytes()), 0);

  Tensor t_gathered = Tensor::zeros({R, C}, DType::kF32);
  layers::copy_full_from_shard(sh.value(t0), t_gathered, c0);
  layers::copy_full_from_shard(sh.value(t1), t_gathered, c1);
  EXPECT_EQ(std::memcmp(t_gathered.raw(), ref.value(full_t).raw(), t_gathered.bytes()), 0);
}

// ---------------------------------------------------------------------------
// End-to-end model parity: TP=k bitwise equals the unsharded run
// ---------------------------------------------------------------------------

struct TpTrace {
  std::vector<float> losses;
  std::vector<bool> replayed;
};

/// The full parity property for one model family: TP in {2, 4} training is
/// bitwise the unsharded run — losses per step AND gathered parameters —
/// with dropout ON.
template <typename MakeModel, typename Batch>
void expect_tp_parity(const char* family, MakeModel make_model, const Batch& batch) {
  constexpr int kSteps = 4;

  // Unsharded reference.
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;
  sc.seed = 3;
  Session ref_session(sc);
  auto ref_model = make_model(dist::TpConfig{}, ref_session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.lr = 0.01f;
  optim::LightSeq2Trainer ref_trainer(ref_model->params(), ocfg);
  std::vector<float> ref_losses;
  for (int i = 0; i < kSteps; ++i) {
    auto [times, res] = core::train_step(ref_session, *ref_model, batch, ref_trainer);
    if constexpr (requires { res.loss_sum; }) {
      ref_losses.push_back(res.loss_sum);
    } else {
      ref_losses.push_back(res.loss);
    }
  }

  for (int tp : {2, 4}) {
    SessionConfig tsc = sc;
    Session session(tsc);
    dist::ProcessGroup pg(tp_cluster(tp));
    session.ctx().tp_group = &pg;
    dist::TpConfig tp_cfg;
    tp_cfg.size = tp;
    auto model = make_model(tp_cfg, session.param_alloc());
    optim::LightSeq2Trainer trainer(model->params(), ocfg);
    for (int i = 0; i < kSteps; ++i) {
      auto [times, res] = core::train_step(session, *model, batch, trainer,
                                           tp_cluster(tp));
      const float loss = [&] {
        if constexpr (requires { res.loss_sum; }) {
          return res.loss_sum;
        } else {
          return res.loss;
        }
      }();
      EXPECT_EQ(loss, ref_losses[static_cast<size_t>(i)])
          << family << " tp=" << tp << " step " << i << " loss diverged";
      EXPECT_GT(times.tp_comm_us, 0.0);
      EXPECT_GT(times.tp_exposed_us, 0.0);
    }
    EXPECT_EQ(dist::compare_gathered_params(model->params(), model->tp_peers(),
                                            ref_model->params()),
              "")
        << family << " tp=" << tp;
  }
}

models::TransformerConfig small_mt_config() {
  models::TransformerConfig cfg = models::TransformerConfig::base(2, 2);
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.max_len = 64;
  return cfg;
}

models::MtBatch small_mt_batch() {
  data::MtDataset ds(small_mt_config().vocab, 24, 4, 10, 13);
  auto batches = data::make_mt_batches(ds, 48, DType::kF32);
  return data::largest_batch(batches);
}

TEST(TpParityTest, TransformerBitwiseAcrossTpDegrees) {
  const models::MtBatch batch = small_mt_batch();
  expect_tp_parity("transformer",
                   [&](dist::TpConfig tp, BufferAllocator* alloc) {
                     models::TransformerConfig cfg = small_mt_config();
                     cfg.tp = tp;
                     return std::make_unique<models::Transformer>(
                         cfg, System::kLightSeq2, DType::kF32, 21, alloc);
                   },
                   batch);
}

TEST(TpParityTest, Gpt2BitwiseAcrossTpDegrees) {
  data::LmDataset ds(64, 4096, 19);
  const models::LmBatch batch = ds.batch(0, 2, 12);
  expect_tp_parity("gpt2",
                   [&](dist::TpConfig tp, BufferAllocator* alloc) {
                     models::Gpt2Config cfg;
                     cfg.vocab = 64;
                     cfg.hidden = 32;
                     cfg.heads = 4;
                     cfg.ffn_dim = 64;
                     cfg.layers = 2;
                     cfg.max_len = 64;
                     cfg.tp = tp;
                     return std::make_unique<models::Gpt2>(cfg, System::kLightSeq2,
                                                           DType::kF32, 23, alloc);
                   },
                   batch);
}

TEST(TpParityTest, BertBitwiseAcrossTpDegrees) {
  data::ClsDataset ds(64, 64, 32, 29);
  const models::ClsBatch batch = ds.batch(0, 4, 12);
  expect_tp_parity("bert",
                   [&](dist::TpConfig tp, BufferAllocator* alloc) {
                     models::BertConfig cfg;
                     cfg.vocab = 64;
                     cfg.hidden = 32;
                     cfg.heads = 4;
                     cfg.ffn_dim = 64;
                     cfg.layers = 2;
                     cfg.max_len = 64;
                     cfg.tp = tp;
                     return std::make_unique<models::Bert>(cfg, System::kLightSeq2,
                                                           DType::kF32, 31, alloc);
                   },
                   batch);
}

TEST(TpParityTest, VitBitwiseAcrossTpDegrees) {
  models::VitConfig vcfg;
  vcfg.image = 64;
  vcfg.patch = 16;
  vcfg.hidden = 32;
  vcfg.heads = 4;
  vcfg.ffn_dim = 64;
  vcfg.layers = 2;
  data::ImageDataset ds(10, 64, 37);
  const models::ImageBatch batch = ds.batch(0, 3, vcfg, DType::kF32);
  expect_tp_parity("vit",
                   [&](dist::TpConfig tp, BufferAllocator* alloc) {
                     models::VitConfig cfg = vcfg;
                     cfg.tp = tp;
                     return std::make_unique<models::Vit>(cfg, System::kLightSeq2,
                                                          DType::kF32, 41, alloc);
                   },
                   batch);
}

// ---------------------------------------------------------------------------
// Hybrid data x model parallelism
// ---------------------------------------------------------------------------

// DP=2 x TP=2 gradients, synced across the two hybrid replicas and
// gathered, are BITWISE the DP=2 unsharded gradients — and match DP=4 (the
// same global batch split 4 ways) up to reduction association.
TEST(HybridParallelTest, Dp2xTp2MatchesDp4Gradients) {
  models::Gpt2Config cfg;
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.layers = 2;
  cfg.max_len = 64;
  cfg.dropout = 0.0f;  // replicas draw independent masks; disable for equivalence
  const int64_t B = 8, L = 12;
  data::LmDataset ds(cfg.vocab, 4096, 47);
  const models::LmBatch full = ds.batch(0, B, L);

  auto quarter = [&](int64_t i) {
    return models::LmBatch{full.ids.slice(i * 2, (i + 1) * 2),
                           full.targets.slice(i * 2, (i + 1) * 2)};
  };
  auto half = [&](int64_t i) {
    return models::LmBatch{full.ids.slice(i * 4, (i + 1) * 4),
                           full.targets.slice(i * 4, (i + 1) * 4)};
  };

  auto make_model = [&](dist::TpConfig tp) {
    models::Gpt2Config c = cfg;
    c.tp = tp;
    return std::make_unique<models::Gpt2>(c, System::kLightSeq2, DType::kF32, 51,
                                          nullptr);
  };
  auto run_fwd_bwd = [&](models::Gpt2& m, Session& s, const models::LmBatch& b) {
    m.params().zero_grads();
    s.ctx().loss_scale = 1.0f;
    (void)m.forward(s.ctx(), b);
    m.backward(s.ctx());
  };

  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.dtype = DType::kF32;

  // DP=4 unsharded replicas on quarter batches.
  std::vector<std::unique_ptr<Session>> s4;
  std::vector<std::unique_ptr<models::Gpt2>> m4;
  std::vector<layers::ParamRegistry*> r4;
  for (int64_t i = 0; i < 4; ++i) {
    s4.push_back(std::make_unique<Session>(sc));
    m4.push_back(make_model({}));
    run_fwd_bwd(*m4.back(), *s4.back(), quarter(i));
    r4.push_back(&m4.back()->params());
  }
  dist::sync_gradients(r4);

  // DP=2 unsharded replicas on half batches (the bitwise reference).
  std::vector<std::unique_ptr<Session>> s2;
  std::vector<std::unique_ptr<models::Gpt2>> m2;
  std::vector<layers::ParamRegistry*> r2;
  for (int64_t i = 0; i < 2; ++i) {
    s2.push_back(std::make_unique<Session>(sc));
    m2.push_back(make_model({}));
    run_fwd_bwd(*m2.back(), *s2.back(), half(i));
    r2.push_back(&m2.back()->params());
  }
  dist::sync_gradients(r2);

  // DP=2 x TP=2 hybrid: two sharded replicas on the same half batches; the
  // DP ring syncs rank-0 shards with rank-0 shards and peers with peers.
  std::vector<std::unique_ptr<Session>> sh;
  std::vector<std::unique_ptr<models::Gpt2>> mh;
  std::vector<dist::ProcessGroup> pgs;
  pgs.reserve(2);
  std::vector<layers::ParamRegistry*> rank0s, peers;
  for (int64_t i = 0; i < 2; ++i) {
    sh.push_back(std::make_unique<Session>(sc));
    pgs.emplace_back(tp_cluster(2));
    sh.back()->ctx().tp_group = &pgs.back();
    dist::TpConfig tp;
    tp.size = 2;
    mh.push_back(make_model(tp));
    if (mh.back()->tp_peers()) mh.back()->tp_peers()->zero_grads();
    run_fwd_bwd(*mh.back(), *sh.back(), half(i));
    rank0s.push_back(&mh.back()->params());
    peers.push_back(mh.back()->tp_peers());
    ASSERT_NE(peers.back(), nullptr);
  }
  dist::sync_gradients(rank0s);
  dist::sync_gradients(peers);

  // Gradient comparison proper: walk shards and compare grad slices.
  for (int p = 0; p < r2[0]->size(); ++p) {
    const layers::ParamRef ref{p};
    const layers::ShardSpec& spec = rank0s[0]->shard_spec(ref);
    Tensor g_hybrid = Tensor::zeros(rank0s[0]->full_shape(ref), DType::kF32);
    if (!spec.sharded()) {
      g_hybrid.copy_(rank0s[0]->grad(ref));
    } else {
      layers::copy_full_from_shard(rank0s[0]->grad(ref), g_hybrid, spec);
    }
    if (spec.sharded()) {
      for (int pi = 0; pi < peers[0]->size(); ++pi) {
        if (peers[0]->name({pi}) == rank0s[0]->name(ref) + ".tp1") {
          layers::ShardSpec ps = spec;
          ps.index = 1;
          layers::copy_full_from_shard(peers[0]->grad({pi}), g_hybrid, ps);
        }
      }
    }
    const Tensor g_dp2 = r2[0]->grad(ref);
    ASSERT_EQ(std::memcmp(g_hybrid.raw(), g_dp2.raw(), g_dp2.bytes()), 0)
        << "hybrid grad diverged from DP=2 unsharded at '" << r2[0]->name(ref) << "'";

    const auto a = g_hybrid.to_vector();
    const auto b = r4[0]->grad(ref).to_vector();
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a[j], b[j], 1e-5)
          << "hybrid vs DP=4 grad mismatch at '" << r2[0]->name(ref) << "'[" << j << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// Graph capture / replay under TP
// ---------------------------------------------------------------------------

TEST(TpGraphTest, CaptureReplayBitwiseUnderTp) {
  models::Gpt2Config cfg;
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.layers = 2;
  cfg.max_len = 64;
  data::LmDataset ds(cfg.vocab, 4096, 61);
  const models::LmBatch batch = ds.batch(0, 2, 12);
  constexpr int kSteps = 6;

  // Arena sized by the shared capacity probe over the TP model.
  dist::ProcessGroup probe_pg(tp_cluster(2));
  core::CapacityScanOptions opt;
  opt.seed = 3;
  opt.headroom = 1.0;
  opt.tp_group = &probe_pg;
  const size_t arena = core::capacity_scan(
                           [&](BufferAllocator* alloc) {
                             models::Gpt2Config c = cfg;
                             c.tp.size = 2;
                             return std::make_unique<models::Gpt2>(
                                 c, System::kLightSeq2, DType::kF32, 67, alloc);
                           },
                           batch, opt) +
                       (1u << 20);

  auto run = [&](bool graph) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = DType::kF32;
    sc.seed = 3;
    sc.graph_capture = graph;
    sc.arena_bytes = arena;
    Session session(sc);
    dist::ProcessGroup pg(tp_cluster(2));
    session.ctx().tp_group = &pg;
    models::Gpt2Config c = cfg;
    c.tp.size = 2;
    models::Gpt2 model(c, System::kLightSeq2, DType::kF32, 67, session.param_alloc());
    optim::OptimConfig ocfg;
    ocfg.lr = 0.01f;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    TpTrace trace;
    std::vector<double> tp_comm;
    for (int i = 0; i < kSteps; ++i) {
      auto [times, res] = core::train_step(session, model, batch, trainer,
                                           tp_cluster(2));
      trace.losses.push_back(res.loss_sum);
      trace.replayed.push_back(times.replayed);
      tp_comm.push_back(times.tp_comm_us);
    }
    EXPECT_FALSE(session.graph_poisoned());
    // TP collectives are charged identically on every step, replayed or not.
    for (size_t i = 1; i < tp_comm.size(); ++i) EXPECT_DOUBLE_EQ(tp_comm[i], tp_comm[0]);
    return trace;
  };

  const TpTrace eager = run(false);
  const TpTrace graph = run(true);
  ASSERT_EQ(eager.losses.size(), graph.losses.size());
  for (size_t i = 0; i < eager.losses.size(); ++i) {
    EXPECT_EQ(eager.losses[i], graph.losses[i]) << "step " << i;
  }
  // Warm-up, capture, then replays.
  EXPECT_FALSE(graph.replayed[0]);
  EXPECT_FALSE(graph.replayed[1]);
  for (size_t i = 2; i < graph.replayed.size(); ++i) EXPECT_TRUE(graph.replayed[i]);
  for (bool r : eager.replayed) EXPECT_FALSE(r);
}

// ---------------------------------------------------------------------------
// Per-device memory: shard accounting and the capacity win
// ---------------------------------------------------------------------------

TEST(TpMemoryTest, AllocShardReservesOneShardFromTheDeviceAllocator) {
  simgpu::Device dev(simgpu::generic(), simgpu::ExecMode::kExecute);
  mem::MeasuringAllocator probe;
  layers::LayerContext ctx(dev, &probe, layers::policy_for(System::kLightSeq2), 1);
  dist::ProcessGroup pg(tp_cluster(4));
  ctx.tp_group = &pg;

  Tensor t = ctx.alloc_shard({256, 4}, DType::kF32);  // 4096 B full
  EXPECT_EQ(t.shape(), (Shape{256, 4}));              // full-shape compute substrate
  EXPECT_EQ(probe.bytes_in_use(), 1024);              // one shard reserved on-device
  ctx.release_tp_reservations();
  EXPECT_EQ(probe.bytes_in_use(), 0);

  // TP off: plain device allocation.
  ctx.tp_group = nullptr;
  Tensor u = ctx.alloc_shard({256, 4}, DType::kF32);
  EXPECT_EQ(probe.bytes_in_use(), 4096);
  (void)u;
}

// The headline capacity win: the Transformer fits at TP=4 in an activation
// arena that the TP=1 run overflows (probed by the shared capacity scan,
// then demonstrated live against a real arena).
TEST(TpMemoryTest, TransformerFitsAtTp4InAnArenaTp1Overflows) {
  models::TransformerConfig cfg = small_mt_config();
  const models::MtBatch batch = small_mt_batch();

  auto probe = [&](int tp) {
    dist::ProcessGroup pg(tp_cluster(tp));
    core::CapacityScanOptions opt;
    opt.seed = 3;
    opt.tp_group = tp > 1 ? &pg : nullptr;
    return core::capacity_scan(
        [&](BufferAllocator* alloc) {
          models::TransformerConfig c = cfg;
          c.tp.size = tp;
          c.tp.simulate_peers = false;  // timing/memory probe: rank 0 only
          return std::make_unique<models::Transformer>(c, System::kLightSeq2,
                                                       DType::kF32, 21, alloc);
        },
        batch, opt);
  };
  const size_t need_tp1 = probe(1);
  const size_t need_tp4 = probe(4);
  EXPECT_LT(need_tp4, need_tp1) << "TP=4 must shrink the per-device activation peak";

  auto run_step = [&](int tp, size_t arena_bytes) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.dtype = DType::kF32;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.arena_bytes = arena_bytes;
    Session session(sc);
    dist::ProcessGroup pg(tp_cluster(tp));
    if (tp > 1) session.ctx().tp_group = &pg;
    models::TransformerConfig c = cfg;
    c.tp.size = tp;
    c.tp.simulate_peers = false;
    models::Transformer model(c, System::kLightSeq2, DType::kF32, 21,
                              session.param_alloc());
    optim::OptimConfig ocfg;
    optim::LightSeq2Trainer trainer(model.params(), ocfg);
    (void)core::train_step(session, model, batch, trainer,
                           tp > 1 ? tp_cluster(tp) : dist::ClusterConfig{});
  };

  // TP=4 trains inside the TP=4-sized arena; the unsharded model overflows it.
  run_step(4, need_tp4);
  EXPECT_THROW(run_step(1, need_tp4), mem::OutOfMemory);
}

}  // namespace
}  // namespace ls2
