#!/usr/bin/env bash
# Tier-1 verification, parameterized for the CI matrix (.github/workflows/ci.yml):
#
#   ./ci.sh [--preset release|sanitize|tsan] [--smoke full|tp|pp|fault|fleet|obs]
#
#   --preset release   Release build with -Werror (default). Runs the full
#                      test suite, smoke-runs every fig* bench, and
#                      schema-checks the machine-readable JSON outputs.
#   --preset sanitize  Debug build under ASan+UBSan (halt on first report).
#                      Tests only — the analytic benches add nothing under a
#                      sanitizer but cost minutes.
#   --preset tsan      Debug build under ThreadSanitizer, running only the
#                      genuinely multi-threaded surface: the two-stream
#                      scheduler (dist_overlap_test), the common/parallel.h
#                      worker pool (gemm_test), and the heartbeat/timeout
#                      watcher thread (fault_tolerance_test). Everything
#                      else is single-threaded and would only slow the lane.
#   --smoke full       Everything the preset covers (default).
#   --smoke tp         Tensor-parallel smoke lane: builds everything, runs
#                      the TP test binary, and (release only) runs fig_tp
#                      and schema-checks its JSON. Fast signal that the
#                      sharded path still holds its parity/capacity claims.
#   --smoke pp         Pipeline-parallel smoke lane: the PP test binary
#                      (1F1B parity/schedule/hybrid claims), and (release
#                      only) fig_3d with its schema check.
#   --smoke fault      Fault-injection smoke lane: the fault-tolerance test
#                      binary (checkpoint/rollback/elastic/degraded-serving
#                      claims), and (release only) fig_fault with its
#                      schema check.
#   --smoke fleet      Serving-fleet smoke lane: the fleet test binary
#                      (router policies, hedged retries, token-exact
#                      re-dispatch, rolling reload), and (release only)
#                      fig_fleet with its schema check.
#   --smoke obs        Observability smoke lane: the telemetry test binaries
#                      (metrics/roofline/SLO/golden-snapshot, Chrome-trace
#                      well-formedness), and (release only) fig_obs with its
#                      schema check (overhead < 1%, roofline coverage).
#   --smoke paged      Paged-KV smoke lane: the serving/infer test binary
#                      (paged-vs-contiguous bitwise parity, COW fork
#                      isolation, block-table graph replay), and (release
#                      only) fig_page with its schema check (>= 4x residents
#                      at fixed KV bytes, prefix-sharing hit rate > 0).
#
# Fails on the first error; a bench that exits nonzero OR writes no/invalid
# JSON fails the run (ci/check_bench_json.py — python3 is required for the
# release preset, so missing validation can never pass silently).
set -euo pipefail
cd "$(dirname "$0")"

PRESET=release
SMOKE=full
while [ $# -gt 0 ]; do
  case "$1" in
    --preset) PRESET="${2:?ci.sh: --preset needs a value (release|sanitize|tsan)}"; shift 2 ;;
    --smoke) SMOKE="${2:?ci.sh: --smoke needs a value (full|tp|pp|fault|fleet|obs|paged)}"; shift 2 ;;
    *) echo "ci.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

case "$PRESET" in
  release)
    BUILD_DIR=build-release
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release -DLS2_WERROR=ON)
    ;;
  sanitize)
    BUILD_DIR=build-sanitize
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Debug
                "-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
                "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
    ;;
  tsan)
    BUILD_DIR=build-tsan
    SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Debug
                "-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
                "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
    ;;
  *) echo "ci.sh: unknown preset '$PRESET'" >&2; exit 2 ;;
esac
case "$SMOKE" in full|tp|pp|fault|fleet|obs|paged) ;; *) echo "ci.sh: unknown smoke '$SMOKE'" >&2; exit 2 ;; esac

echo "ci.sh: preset=$PRESET smoke=$SMOKE -> $BUILD_DIR"
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
cd "$BUILD_DIR"

# A hang is a failure, not a stall: every test binary gets a hard timeout —
# and a filter that matches nothing is a failure too, never a silent pass.
if [ "$PRESET" = tsan ]; then
  # The TSan lane pins its scope to the threaded surface regardless of the
  # smoke flavour — single-threaded tests under TSan are pure slowdown.
  ctest --output-on-failure --timeout 600 --no-tests=error \
    -R 'dist_overlap_test|gemm_test|fault_tolerance_test'
elif [ "$SMOKE" = tp ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R tensor_parallel_test
elif [ "$SMOKE" = pp ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R pipeline_parallel_test
elif [ "$SMOKE" = fault ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R fault_tolerance_test
elif [ "$SMOKE" = fleet ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R fleet_test
elif [ "$SMOKE" = obs ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R 'obs_test|trace_test'
elif [ "$SMOKE" = paged ]; then
  ctest --output-on-failure --timeout 300 --no-tests=error -R infer_test
else
  ctest --output-on-failure --timeout 300 --no-tests=error -j "$(nproc)"
fi

if [ "$PRESET" != release ]; then
  echo "ci.sh: $PRESET preset done (benches are a release-lane concern)"
  exit 0
fi

command -v python3 >/dev/null 2>&1 || {
  echo "ci.sh: python3 is required to validate bench JSON" >&2; exit 1; }

# Stale outputs from a previous invocation must never pass validation: a
# bench that silently stops writing its JSON has to FAIL the schema check.
rm -f bench/fig*.json

if [ "$SMOKE" = tp ]; then
  echo "ci.sh: smoke-running ./fig_tp"
  ./fig_tp >/dev/null
  python3 ../ci/check_bench_json.py fig_tp
elif [ "$SMOKE" = pp ]; then
  echo "ci.sh: smoke-running ./fig_3d"
  ./fig_3d >/dev/null
  python3 ../ci/check_bench_json.py fig_3d
elif [ "$SMOKE" = fault ]; then
  echo "ci.sh: smoke-running ./fig_fault"
  ./fig_fault >/dev/null
  python3 ../ci/check_bench_json.py fig_fault
elif [ "$SMOKE" = fleet ]; then
  echo "ci.sh: smoke-running ./fig_fleet"
  ./fig_fleet >/dev/null
  python3 ../ci/check_bench_json.py fig_fleet
elif [ "$SMOKE" = obs ]; then
  echo "ci.sh: smoke-running ./fig_obs"
  ./fig_obs >/dev/null
  python3 ../ci/check_bench_json.py fig_obs
elif [ "$SMOKE" = paged ]; then
  echo "ci.sh: smoke-running ./fig_page"
  ./fig_page >/dev/null
  python3 ../ci/check_bench_json.py fig_page
else
  # Smoke-run EVERY paper-figure bench (all run in kModelOnly, so this is
  # cheap) so bench binaries can't bit-rot silently, then schema-check the
  # machine-readable outputs perf-trajectory tracking relies on — a bench
  # that silently writes nothing (or garbage) fails here.
  for bench in ./fig*; do
    [ -x "$bench" ] || continue
    echo "ci.sh: smoke-running $bench"
    "$bench" >/dev/null
  done
  python3 ../ci/check_bench_json.py fig22 fig_launch_graph fig_serve fig_tp fig_3d fig_fault fig_fleet fig_obs fig_page
fi

echo "ci.sh: all checks passed"
