#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite.
# Fails on the first error, including any ctest failure — run this before
# merging anything.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Smoke-run the headline scaling benchmark end-to-end (exercises the
# overlapped sync + pipelined update paths at 1..5 nodes) and validate its
# machine-readable output so perf-trajectory tracking can rely on it.
./fig22_scaling >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench/fig22.json >/dev/null
  echo "ci.sh: bench/fig22.json parses"
else
  echo "ci.sh: python3 not found — skipped fig22.json validation"
fi

echo "ci.sh: all checks passed"
