#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite.
# Fails on the first error, including any ctest failure — run this before
# merging anything.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Smoke-run the headline scaling benchmark end-to-end (exercises the
# overlapped sync path at 1..5 nodes).
./fig22_scaling >/dev/null

echo "ci.sh: all checks passed"
