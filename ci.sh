#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite.
# Fails on the first error, including any ctest failure — run this before
# merging anything.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Smoke-run EVERY paper-figure bench (all run in kModelOnly, so this is
# cheap) so bench binaries can't bit-rot silently, then validate the
# machine-readable outputs perf-trajectory tracking relies on.
for bench in ./fig*; do
  [ -x "$bench" ] || continue
  echo "ci.sh: smoke-running $bench"
  "$bench" >/dev/null
done
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench/fig22.json >/dev/null
  echo "ci.sh: bench/fig22.json parses"
  python3 -m json.tool bench/fig_launch_graph.json >/dev/null
  echo "ci.sh: bench/fig_launch_graph.json parses"
  # fig_serve: parse + schema-check the fields the serving claims rest on
  # (continuous >= 1.5x static tokens/sec; replayed decode beats eager on the
  # launch-bound small-batch profile).
  python3 - <<'EOF'
import json
with open("bench/fig_serve.json") as f:
    doc = json.load(f)
assert doc["figure"] == "fig_serve" and doc["schema"] == 1
rows = doc["configs"]
assert rows, "fig_serve.json has no configs"
for r in rows:
    assert r["section"] in ("batching", "graph"), r
    for key in ("profile", "slots", "rate_per_sec", "requests",
                "tokens_per_sec_speedup", "decode_steps"):
        assert key in r, (key, r)
batching = [r for r in rows if r["section"] == "batching"]
graph = [r for r in rows if r["section"] == "graph"]
assert batching and graph
assert all(r["tokens_per_sec_speedup"] >= 1.5 for r in batching), \
    "continuous batching must be >= 1.5x static tokens/sec"
small = min(graph, key=lambda r: r["slots"])
assert small["tokens_per_sec_speedup"] > 1.2 and small["replayed_steps"] > 0, \
    "graph-replayed decode must beat eager on the launch-bound profile"
print("ci.sh: bench/fig_serve.json parses and passes the schema check")
EOF
else
  echo "ci.sh: python3 not found — skipped JSON validation"
fi

echo "ci.sh: all checks passed"
