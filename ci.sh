#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite.
# Fails on the first error, including any ctest failure — run this before
# merging anything.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Smoke-run EVERY paper-figure bench (all run in kModelOnly, so this is
# cheap) so bench binaries can't bit-rot silently, then validate the
# machine-readable outputs perf-trajectory tracking relies on.
for bench in ./fig*; do
  [ -x "$bench" ] || continue
  echo "ci.sh: smoke-running $bench"
  "$bench" >/dev/null
done
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench/fig22.json >/dev/null
  echo "ci.sh: bench/fig22.json parses"
  python3 -m json.tool bench/fig_launch_graph.json >/dev/null
  echo "ci.sh: bench/fig_launch_graph.json parses"
else
  echo "ci.sh: python3 not found — skipped JSON validation"
fi

echo "ci.sh: all checks passed"
