// MRPC-style sentence-pair classification with a BERT encoder — the
// Fig. 13 workload at example scale. Trains to high accuracy, then shows the
// checkpoint round-trip: save under LightSeq2, reload under the Fairseq
// policy (the §V-B interoperability claim), and verify identical logits.
#include <cstdio>

#include "core/lightseq2.h"

using namespace ls2;

int main() {
  core::SessionConfig sc;
  sc.system = layers::System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kExecute;
  core::Session session(sc);

  models::BertConfig cfg;
  cfg.vocab = 128;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn_dim = 64;
  cfg.layers = 2;
  cfg.max_len = 24;
  cfg.dropout = 0.0f;
  models::Bert model(cfg, sc.system, DType::kF32, /*seed=*/5);

  optim::OptimConfig ocfg;
  ocfg.lr = 2e-3f;
  auto trainer = optim::make_trainer(sc.system, model.params(), ocfg);
  data::ClsDataset dataset(cfg.vocab, 1024, cfg.max_len, 9);

  std::printf("fine-tuning BERT-style classifier on MRPC-like pairs...\n");
  int64_t correct = 0, total = 0;
  for (int step = 0; step < 150; ++step) {
    auto [times, res] = core::train_step(session, model, dataset.batch(step, 16, 20),
                                         *trainer);
    correct += res.correct;
    total += res.total;
    if (step % 25 == 24) {
      std::printf("steps %3d-%3d | loss %.4f | running accuracy %.1f%%\n", step - 24, step,
                  res.loss, 100.0 * correct / total);
      correct = total = 0;
    }
  }

  // Interoperability: save, reload into a Fairseq-policy model, compare.
  const char* path = "/tmp/ls2_bert_example.ckpt";
  models::save_checkpoint(model.params(), path);
  core::SessionConfig sc2;
  sc2.system = layers::System::kFairseq;
  core::Session session2(sc2);
  models::Bert reloaded(cfg, sc2.system, DType::kF32, /*seed=*/999);
  models::load_checkpoint(reloaded.params(), path);

  auto eval = dataset.batch(10000, 32, 20);
  const auto a = model.forward(session.ctx(), eval);
  model.release();
  const auto b = reloaded.forward(session2.ctx(), eval);
  reloaded.release();
  std::printf("\ncheckpoint round-trip across systems: LightSeq2 acc %.1f%%, reloaded "
              "Fairseq acc %.1f%% (losses %.5f vs %.5f)\n",
              100.0 * a.correct / a.total, 100.0 * b.correct / b.total, a.loss, b.loss);
  std::remove(path);
  return 0;
}
