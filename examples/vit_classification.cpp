// CIFAR-style image classification with a Vision Transformer — the Fig. 12
// workload at example scale. Images arrive as patch vectors (resize+im2col
// done by the host pipeline, as in real loaders).
#include <cstdio>

#include "core/lightseq2.h"

using namespace ls2;

int main() {
  core::SessionConfig sc;
  sc.system = layers::System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kExecute;
  core::Session session(sc);

  models::VitConfig cfg;
  cfg.image = 64;
  cfg.patch = 16;  // 4x4 grid => 16 patches + [CLS]
  cfg.hidden = 48;
  cfg.heads = 4;
  cfg.ffn_dim = 96;
  cfg.layers = 2;
  cfg.num_classes = 4;
  cfg.dropout = 0.05f;
  models::Vit model(cfg, sc.system, DType::kF32, /*seed=*/8);
  std::printf("ViT: %lldx%lld images, %lld patches of dim %lld, %lld parameters\n",
              static_cast<long long>(cfg.image), static_cast<long long>(cfg.image),
              static_cast<long long>(cfg.patches()),
              static_cast<long long>(cfg.patch_dim()),
              static_cast<long long>(model.params().total_elements()));

  optim::OptimConfig ocfg;
  ocfg.lr = 1e-3f;
  auto trainer = optim::make_trainer(sc.system, model.params(), ocfg);
  data::ImageDataset dataset(cfg.num_classes, 2048, 15);

  int64_t correct = 0, total = 0;
  for (int step = 0; step < 120; ++step) {
    auto batch = dataset.batch(step, 16, cfg, DType::kF32);
    auto [times, res] = core::train_step(session, model, batch, *trainer);
    correct += res.correct;
    total += res.total;
    if (step % 20 == 19) {
      std::printf("steps %3d-%3d | loss %.4f | running accuracy %5.1f%%\n", step - 19, step,
                  res.loss, 100.0 * correct / total);
      correct = total = 0;
    }
  }
  std::printf("\nthe encoder stack is shared verbatim with BERT/GPT-2/Transformer —\n"
              "the paper's point that one set of fused kernels covers NLP and CV.\n");
  return 0;
}
