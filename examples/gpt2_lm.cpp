// WikiText-style language modelling with a GPT-2 (decoder-only) model —
// the Fig. 14 workload at example scale. Reports perplexity while training
// in mixed precision (FP16 workspace + on-the-fly-conversion trainer).
#include <cmath>
#include <cstdio>

#include "core/lightseq2.h"

using namespace ls2;

int main() {
  core::SessionConfig sc;
  sc.system = layers::System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kExecute;
  sc.dtype = DType::kF16;  // mixed-precision training end-to-end
  core::Session session(sc);

  models::Gpt2Config cfg;
  cfg.vocab = 96;
  cfg.hidden = 48;
  cfg.heads = 4;
  cfg.ffn_dim = 96;
  cfg.layers = 2;
  cfg.max_len = 32;
  cfg.dropout = 0.0f;
  models::Gpt2 model(cfg, sc.system, DType::kF16, /*seed=*/3);
  std::printf("GPT-2-style LM: %lld parameters, FP16 workspace\n",
              static_cast<long long>(model.params().total_elements()));

  optim::OptimConfig ocfg;
  ocfg.lr = 1.5e-3f;
  auto trainer = optim::make_trainer(sc.system, model.params(), ocfg);
  data::LmDataset dataset(cfg.vocab, 1 << 15, 21);

  for (int step = 0; step < 240; ++step) {
    auto [times, res] = core::train_step(session, model, dataset.batch(step, 8, 24),
                                         *trainer);
    if (step % 40 == 0) {
      std::printf("step %3d | loss/token %6.4f | perplexity %8.2f | step %6.2f ms\n", step,
                  res.loss_per_token(), std::exp(res.loss_per_token()),
                  times.total_us() / 1e3);
    }
  }
  std::printf("\nmixed-precision training converged; trainer state is %.1f KB "
              "(FP32 moments only — no master copies).\n",
              trainer->state_bytes() / 1024.0);
  return 0;
}
