// WMT-style machine translation (the paper's headline workload): trains the
// same model under Fairseq and LightSeq2 policies on identical data, then
// reports (a) that the loss trajectories match — LightSeq2 changes nothing
// about training behaviour — and (b) the simulated-device speedup.
#include <cstdio>
#include <vector>

#include "core/lightseq2.h"

using namespace ls2;

namespace {

struct RunResult {
  std::vector<float> losses;
  double total_step_us = 0;
  int64_t total_tokens = 0;
};

RunResult run(layers::System system, int steps) {
  core::SessionConfig sc;
  sc.system = system;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kExecute;
  core::Session session(sc);

  models::TransformerConfig cfg;
  cfg.vocab = 96;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 40;
  cfg.dropout = cfg.attn_dropout = cfg.act_dropout = 0.05f;
  models::Transformer model(cfg, system, DType::kF32, /*seed=*/11);

  optim::OptimConfig ocfg;
  ocfg.lr = 2.5e-3f;
  auto trainer = optim::make_trainer(system, model.params(), ocfg);
  optim::InverseSqrtSchedule sched(2.5e-3f, 20);

  data::MtDataset dataset(cfg.vocab, 512, 4, 16, 13);
  auto batches = data::make_mt_batches(dataset, 384, DType::kF32,
                                       layers::policy_for(system).seq_multiple);

  RunResult out;
  for (int step = 0; step < steps; ++step) {
    trainer->set_lr(sched.lr(step + 1));
    const auto& batch = batches[static_cast<size_t>(step) % batches.size()];
    auto [times, result] = core::train_step(session, model, batch, *trainer);
    out.losses.push_back(result.loss_per_token());
    if (step > 0) {  // skip allocator warm-up step in throughput accounting
      out.total_step_us += times.total_us();
      out.total_tokens += result.tokens;
    }
  }
  return out;
}

}  // namespace

int main() {
  const int steps = 120;
  std::printf("training identical models under both systems (%d steps)...\n\n", steps);
  const RunResult fairseq = run(layers::System::kFairseq, steps);
  const RunResult ls2 = run(layers::System::kLightSeq2, steps);

  std::printf("%-6s %14s %14s\n", "step", "Fairseq loss", "LightSeq2 loss");
  for (int s = 0; s < steps; s += 10) {
    std::printf("%-6d %14.4f %14.4f\n", s, fairseq.losses[static_cast<size_t>(s)],
                ls2.losses[static_cast<size_t>(s)]);
  }
  std::printf("%-6s %14.4f %14.4f\n", "final", fairseq.losses.back(), ls2.losses.back());

  const double fs_wps = fairseq.total_tokens / (fairseq.total_step_us * 1e-6);
  const double ls_wps = ls2.total_tokens / (ls2.total_step_us * 1e-6);
  std::printf("\nsimulated-device throughput: Fairseq %.0f words/s, LightSeq2 %.0f "
              "words/s — %.2fx speedup\n",
              fs_wps, ls_wps, ls_wps / fs_wps);
  std::printf("identical loss curves + faster steps = the paper's core claim.\n");
  return 0;
}
