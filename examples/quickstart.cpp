// Quickstart: train a small LightSeq2 Transformer on a synthetic
// translation task and watch the loss fall — the 60-second tour of the API.
//
//   Session      — simulated device + memory strategy + system policy
//   Transformer  — model zoo entry (encoder-decoder, tied embeddings)
//   make_trainer — the fused FP16 LightSeq2 trainer (§IV-C)
//   train_step   — one timed four-stage step (fwd/bwd/sync/update)
#include <cstdio>

#include "core/lightseq2.h"

using namespace ls2;

int main() {
  // 1. A session: LightSeq2 policy, V100 profile, real execution.
  core::SessionConfig sc;
  sc.system = layers::System::kLightSeq2;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kExecute;
  core::Session session(sc);

  // 2. A small Transformer (2 encoder + 2 decoder layers).
  models::TransformerConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 32;
  models::Transformer model(cfg, sc.system, DType::kF32, /*seed=*/42);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.params().total_elements()));

  // 3. The LightSeq2 fused trainer (one update launch per step).
  optim::OptimConfig ocfg;
  ocfg.lr = 2e-3f;
  auto trainer = optim::make_trainer(sc.system, model.params(), ocfg);

  // 4. Synthetic WMT-style data: variable-length pairs, token batching.
  data::MtDataset dataset(cfg.vocab, /*size=*/256, /*min_len=*/4, /*max_len=*/12, 7);
  auto batches = data::make_mt_batches(dataset, /*max_tokens=*/256, DType::kF32);
  std::printf("data: %zu token-batched batches\n\n", batches.size());

  // 5. Train.
  for (int step = 0; step < 100; ++step) {
    const auto& batch = batches[static_cast<size_t>(step) % batches.size()];
    auto [times, result] = core::train_step(session, model, batch, *trainer);
    if (step % 20 == 0 || step == 99) {
      std::printf("step %3d | loss/token %6.3f | simulated step time %7.2f ms "
                  "(fw %5.2f bw %5.2f upd %5.2f)\n",
                  step, result.loss_per_token(), times.total_us() / 1e3,
                  times.forward_us / 1e3, times.backward_us / 1e3,
                  times.update_us / 1e3);
    }
  }
  std::printf("\ndevice: %lld kernel launches, %.1f%% utilisation\n",
              static_cast<long long>(session.device().stats().launches),
              100.0 * session.device().utilization());
  return 0;
}
